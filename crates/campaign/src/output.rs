//! Campaign result rendering shared by every front-end.
//!
//! The CLI `suite` command and the `contango serve` daemon both render a
//! [`CampaignResult`] through [`suite_output`]; because it is literally the
//! same function, a serve response body is bit-identical to the offline
//! output for the same manifest — there is no second formatter to drift.

use crate::pareto::Frontier;
use crate::runner::CampaignResult;
use contango_benchmarks::report::Table;

/// Which report a campaign renders to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportKind {
    /// Aggregate tables: per-run summary, per-stage means, SPICE-run
    /// counts, and (when present) a failure table.
    #[default]
    Table,
    /// JSON Lines, one record per job in submission order.
    Jsonl,
    /// The Pareto frontier over (worst-case skew, cap %, wirelength) as a
    /// table in canonical (benchmark, tool) order.
    Pareto,
    /// The Pareto frontier as JSON Lines, one non-dominated point per line
    /// plus a trailing reduction summary.
    FrontierJsonl,
}

impl ReportKind {
    /// The wire/CLI name of the report kind.
    pub fn label(&self) -> &'static str {
        match self {
            ReportKind::Table => "table",
            ReportKind::Jsonl => "jsonl",
            ReportKind::Pareto => "pareto",
            ReportKind::FrontierJsonl => "frontier-jsonl",
        }
    }

    /// Parses a wire/CLI report name.
    pub fn from_label(label: &str) -> Option<ReportKind> {
        match label {
            "table" => Some(ReportKind::Table),
            "jsonl" => Some(ReportKind::Jsonl),
            "pareto" => Some(ReportKind::Pareto),
            "frontier-jsonl" => Some(ReportKind::FrontierJsonl),
            _ => None,
        }
    }
}

/// How tables are laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableFormat {
    /// Right-aligned plain text.
    #[default]
    Text,
    /// GitHub-flavored Markdown.
    Markdown,
    /// RFC-4180-style CSV.
    Csv,
}

impl TableFormat {
    /// The wire/CLI name of the format.
    pub fn label(&self) -> &'static str {
        match self {
            TableFormat::Text => "text",
            TableFormat::Markdown => "markdown",
            TableFormat::Csv => "csv",
        }
    }

    /// Parses a wire/CLI format name.
    pub fn from_label(label: &str) -> Option<TableFormat> {
        match label {
            "text" => Some(TableFormat::Text),
            "markdown" => Some(TableFormat::Markdown),
            "csv" => Some(TableFormat::Csv),
            _ => None,
        }
    }
}

/// Renders one table in the requested format.
pub fn render_table(table: &Table, format: TableFormat) -> String {
    match format {
        TableFormat::Text => table.to_text(),
        TableFormat::Markdown => table.to_markdown(),
        TableFormat::Csv => table.to_csv(),
    }
}

/// Renders a campaign result the way the CLI `suite` command reports it:
/// either JSON Lines, or the summary / stage-aggregate / run-count tables
/// (plus a failure table when any job failed) separated by blank lines.
pub fn suite_output(result: &CampaignResult, report: ReportKind, format: TableFormat) -> String {
    match report {
        ReportKind::Jsonl => result.to_jsonl(),
        ReportKind::Pareto => {
            let mut out = render_table(&Frontier::of_result(result).table(), format);
            let failures = result.failures();
            if !failures.is_empty() {
                let mut table = Table::new(["benchmark", "tool", "error"]);
                for (record, error) in failures {
                    table.push_row([
                        record.benchmark.clone(),
                        record.tool.clone(),
                        error.to_string(),
                    ]);
                }
                out.push('\n');
                out.push_str(&render_table(&table, format));
            }
            out
        }
        ReportKind::FrontierJsonl => Frontier::of_result(result).to_jsonl(),
        ReportKind::Table => {
            let mut out = String::new();
            out.push_str(&render_table(&result.suite_table(), format));
            out.push('\n');
            out.push_str(&render_table(&result.stage_aggregate_table(), format));
            out.push('\n');
            out.push_str(&render_table(&result.run_count_table(), format));
            // Failures go out as one more table so csv/markdown output
            // stays parseable (they are also reported per job and in the
            // exit status / response fields).
            let failures = result.failures();
            if !failures.is_empty() {
                let mut table = Table::new(["benchmark", "tool", "error"]);
                for (record, error) in failures {
                    table.push_row([
                        record.benchmark.clone(),
                        record.tool.clone(),
                        error.to_string(),
                    ]);
                }
                out.push('\n');
                out.push_str(&render_table(&table, format));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in [
            ReportKind::Table,
            ReportKind::Jsonl,
            ReportKind::Pareto,
            ReportKind::FrontierJsonl,
        ] {
            assert_eq!(ReportKind::from_label(kind.label()), Some(kind));
        }
        for format in [TableFormat::Text, TableFormat::Markdown, TableFormat::Csv] {
            assert_eq!(TableFormat::from_label(format.label()), Some(format));
        }
        assert_eq!(ReportKind::from_label("yaml"), None);
        assert_eq!(TableFormat::from_label("latex"), None);
    }
}
