//! Sharded multi-instance campaign runner for the Contango flow.
//!
//! The paper's results are about *suites*: the ISPD'09 benchmark battery,
//! baseline comparisons (Table IV), stage ablations and scalability sweeps
//! (Table V) — whole-flow work that is embarrassingly parallel across
//! instances. This crate turns a matrix of such runs into a [`Campaign`]:
//!
//! * a [`Job`] is one whole flow — an instance plus a technology, a
//!   [`FlowConfig`](contango_core::flow::FlowConfig) and an optional
//!   stage selection (Contango, a baseline stand-in, or an ablation);
//! * the executor shards jobs across a deterministic worker pool. Jobs are
//!   dispatched **longest-first** (cost ≈ sinks × passes) so heterogeneous
//!   workloads balance, each worker owns a reusable
//!   [`EngineSession`](contango_core::session::EngineSession) (warm
//!   evaluator caches and construction arenas across jobs), and results
//!   are reduced in **submission order**, so every aggregate is
//!   bit-identical for any thread count — and identical to a serial
//!   reference loop, because session reuse affects wall-clock only;
//! * per-job results stream as JSON Lines while the campaign runs
//!   ([`Campaign::run_streaming`]), and the collected
//!   [`CampaignResult`] renders the aggregate suite report: per-benchmark
//!   summaries, per-stage CLR/skew means and evaluator-run counts
//!   (Tables III–V), all canonically sorted. JSONL records carry only
//!   deterministic fields (no wall-clock), so suite outputs can be
//!   compared across machines and thread counts.
//!
//! A failing job never aborts the campaign: its error is recorded in the
//! job's [`JobRecord`] and every other job still completes.
//!
//! Around the executor sit the service layers added for
//! clock-synthesis-as-a-service:
//!
//! * [`manifest`] — a declarative, checked-in description of a whole
//!   experiment with a typed parser; the single `Manifest -> Campaign`
//!   path shared by the CLI, the library and the daemon;
//! * [`json`] / [`jsonl`] — the hand-rolled JSON decoder and encoder
//!   (NDJSON framing for reports and protocol alike);
//! * [`protocol`] — typed request/response frames for the wire;
//! * [`serve`] — the `contango serve` daemon: a warm-session worker pool
//!   behind a bounded queue with backpressure and graceful shutdown, plus
//!   the blocking [`Client`];
//! * [`dist`] / [`worker`] — the distributed campaign runner: a
//!   coordinator that owns the job list and the canonical-order reduction,
//!   and worker processes (spawned over pipes or connected over TCP) that
//!   hold the warm sessions. Failure detection (heartbeats, closed
//!   transports, malformed frames) plus bounded requeue keep aggregate
//!   reports byte-identical to a serial in-process run under any worker
//!   count or failure pattern;
//! * [`output`] — the one rendering path ([`output::suite_output`]) both
//!   the CLI and the daemon use, making served responses bit-identical to
//!   offline output by construction.
//!
//! ```
//! use contango_campaign::{Campaign, Job};
//! use contango_core::flow::FlowConfig;
//! use contango_core::instance::ClockNetInstance;
//! use contango_geom::Point;
//! use contango_tech::Technology;
//!
//! let tech = Technology::ispd09();
//! let mut campaign = Campaign::new().threads(2);
//! for (name, die) in [("small", 900.0), ("wide", 1400.0)] {
//!     let instance = ClockNetInstance::builder(name)
//!         .die(0.0, 0.0, die, die)
//!         .sink(Point::new(250.0, 250.0), 10.0)
//!         .sink(Point::new(die - 250.0, die - 250.0), 10.0)
//!         .cap_limit(100_000.0)
//!         .build()?;
//!     campaign = campaign
//!         .push(Job::contango(&tech, FlowConfig::fast(), &instance))
//!         .push(Job::contango(&tech, FlowConfig::fast(), &instance)
//!             .with_tool("no-snaking")
//!             .with_skip(vec!["TWSN".to_string()]));
//! }
//! let result = campaign.run();
//! assert_eq!(result.records.len(), 4);
//! assert!(result.failures().is_empty());
//! println!("{}", result.suite_table().to_text());
//! # Ok::<(), contango_core::error::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod job;
pub mod json;
pub mod jsonl;
pub mod manifest;
pub mod output;
pub mod pareto;
pub mod protocol;
pub mod runner;
pub mod serve;
pub mod worker;

pub use dist::{DistConfig, DistError, DistSummary};
pub use job::{CornerKind, Job, VariationSpec};
pub use json::{JsonError, JsonValue};
pub use manifest::{DispatchMode, InstanceSource, Manifest, ManifestError};
pub use output::{ReportKind, TableFormat};
pub use pareto::{sweep_jobs, Frontier, ParetoPoint, SweepAxes};
pub use protocol::{
    CoordFrame, Request, RequestBody, RequestId, Response, ServerError, WorkerFrame,
};
pub use runner::{
    Campaign, CampaignResult, CornerMetrics, JobMetrics, JobRecord, MemoryProfile, VariationMetrics,
};
pub use serve::{Client, ClientError, ClientStats, ServeConfig, ServeSummary, Server};
pub use worker::{ChaosConfig, WorkerConfig, WorkerConnection, WorkerError, WorkerSummary};
