//! The `contango serve` wire protocol: one JSON object per line.
//!
//! Requests and responses travel as newline-delimited JSON (NDJSON) over a
//! plain TCP stream — the same framing as the campaign JSONL reports, so
//! the hand-rolled [`crate::jsonl`] encoder and [`crate::json`] decoder
//! cover both. Every frame is self-describing and carries the request
//! [`RequestId`] so responses can be matched even when a connection
//! pipelines many requests and the pool completes them out of order.
//!
//! Requests:
//!
//! ```text
//! {"id":1,"kind":"run","manifest":"suite ispd09\n...","report":"table","format":"text"}
//! {"id":2,"kind":"ping"}
//! {"id":3,"kind":"shutdown"}
//! ```
//!
//! Responses (`status` discriminates):
//!
//! ```text
//! {"id":1,"status":"ok","jobs":28,"failed":0,"output":"..."}
//! {"id":2,"status":"pong","workers":4,"queue_capacity":64}
//! {"id":3,"status":"shutting-down"}
//! {"id":1,"status":"error","kind":"overloaded","message":"..."}
//! ```
//!
//! Decoding is total: any line — malformed JSON, wrong types, unknown
//! kinds — yields a typed [`ServerError`], never a panic, and the server
//! answers it with a `status:"error"` frame ([`Response::Error`]) echoing
//! the request id whenever one could be salvaged from the frame.

use crate::json::{JsonError, JsonValue};
use crate::jsonl::escape_into;
use crate::manifest::ManifestError;
use crate::output::{ReportKind, TableFormat};
use contango_sim::CacheCounters;
use std::fmt;
use std::fmt::Write as _;

/// A client-chosen request correlator, echoed verbatim in the response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestId {
    /// A non-negative integer id.
    Number(u64),
    /// A string id.
    Text(String),
}

impl RequestId {
    fn encode_into(&self, out: &mut String) {
        match self {
            RequestId::Number(n) => {
                let _ = write!(out, "{n}");
            }
            RequestId::Text(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
        }
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestId::Number(n) => write!(f, "{n}"),
            RequestId::Text(s) => write!(f, "{s}"),
        }
    }
}

/// What a request asks the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Compile the manifest text and run the resulting campaign.
    Run {
        /// Manifest text ([`crate::manifest`] format).
        manifest: String,
        /// Which report to render into the response `output`.
        report: ReportKind,
        /// Table layout for [`ReportKind::Table`].
        format: TableFormat,
    },
    /// Liveness/status probe.
    Ping,
    /// Drain in-flight and queued jobs, then stop the server.
    Shutdown,
}

/// One decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The client's correlator, echoed in the response.
    pub id: RequestId,
    /// The requested action.
    pub body: RequestBody,
}

/// A typed request failure, as reported to clients in a
/// [`Response::Error`] frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The frame is not valid JSON.
    Malformed(JsonError),
    /// The frame is valid JSON but not a valid request.
    Invalid(String),
    /// The request manifest failed to parse or compile.
    Manifest(ManifestError),
    /// The request queue is full; retry later.
    Overloaded {
        /// The queue capacity that was exceeded.
        capacity: usize,
    },
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl ServerError {
    /// The machine-readable error discriminator carried in the `kind`
    /// field of a [`Response::Error`] frame.
    pub fn kind(&self) -> &'static str {
        match self {
            ServerError::Malformed(_) => "malformed",
            ServerError::Invalid(_) => "invalid-request",
            ServerError::Manifest(_) => "manifest",
            ServerError::Overloaded { .. } => "overloaded",
            ServerError::ShuttingDown => "shutting-down",
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Malformed(e) => write!(f, "malformed request frame: {e}"),
            ServerError::Invalid(message) => write!(f, "invalid request: {message}"),
            ServerError::Manifest(e) => write!(f, "manifest error: {e}"),
            ServerError::Overloaded { capacity } => {
                write!(f, "request queue is full ({capacity} pending); retry later")
            }
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServerError {}

/// A request decode failure: the error, plus the request id when one could
/// still be salvaged from the frame (so the error response can echo it).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// The salvaged request id, if the frame carried a readable one.
    pub id: Option<RequestId>,
    /// What was wrong with the frame.
    pub error: ServerError,
}

/// Reads an `id` field as a [`RequestId`].
fn decode_id(value: &JsonValue) -> Result<RequestId, ServerError> {
    match value {
        JsonValue::String(s) => Ok(RequestId::Text(s.clone())),
        JsonValue::Number(_) => value.as_u64().map(RequestId::Number).ok_or_else(|| {
            ServerError::Invalid("`id` must be a non-negative integer or a string".to_string())
        }),
        _ => Err(ServerError::Invalid(
            "`id` must be a non-negative integer or a string".to_string(),
        )),
    }
}

fn require_str<'a>(frame: &'a JsonValue, key: &str, kind: &str) -> Result<&'a str, ServerError> {
    frame
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ServerError::Invalid(format!("`{kind}` request needs a string `{key}`")))
}

impl Request {
    /// Decodes one request frame.
    ///
    /// # Errors
    ///
    /// Returns a [`RequestError`] carrying the salvaged id (when the frame
    /// had a readable one) and the typed [`ServerError`] to report.
    pub fn decode(line: &str) -> Result<Request, RequestError> {
        let no_id = |error: ServerError| RequestError { id: None, error };
        let frame = JsonValue::parse(line).map_err(|e| no_id(ServerError::Malformed(e)))?;
        if !matches!(frame, JsonValue::Object(_)) {
            return Err(no_id(ServerError::Invalid(
                "request frame must be a JSON object".to_string(),
            )));
        }
        let id = frame
            .get("id")
            .ok_or_else(|| no_id(ServerError::Invalid("request needs an `id`".to_string())))
            .and_then(|v| decode_id(v).map_err(no_id))?;
        let with_id = |error: ServerError| RequestError {
            id: Some(id.clone()),
            error,
        };
        let kind = frame
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| {
                with_id(ServerError::Invalid(
                    "request needs a string `kind`".to_string(),
                ))
            })?;
        let body = match kind {
            "run" => {
                let manifest = require_str(&frame, "manifest", "run").map_err(&with_id)?;
                let report = match frame.get("report") {
                    None => ReportKind::default(),
                    Some(v) => v.as_str().and_then(ReportKind::from_label).ok_or_else(|| {
                        with_id(ServerError::Invalid(
                            "`report` must be \"table\" or \"jsonl\"".to_string(),
                        ))
                    })?,
                };
                let format = match frame.get("format") {
                    None => TableFormat::default(),
                    Some(v) => v
                        .as_str()
                        .and_then(TableFormat::from_label)
                        .ok_or_else(|| {
                            with_id(ServerError::Invalid(
                                "`format` must be \"text\", \"markdown\" or \"csv\"".to_string(),
                            ))
                        })?,
                };
                RequestBody::Run {
                    manifest: manifest.to_string(),
                    report,
                    format,
                }
            }
            "ping" => RequestBody::Ping,
            "shutdown" => RequestBody::Shutdown,
            other => {
                return Err(with_id(ServerError::Invalid(format!(
                    "unknown request kind `{other}`"
                ))))
            }
        };
        Ok(Request { id, body })
    }

    /// Encodes the request as one NDJSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"id\":");
        self.id.encode_into(&mut out);
        match &self.body {
            RequestBody::Run {
                manifest,
                report,
                format,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"run\",\"report\":\"{}\",\"format\":\"{}\",\"manifest\":\"",
                    report.label(),
                    format.label()
                );
                escape_into(&mut out, manifest);
                out.push('"');
            }
            RequestBody::Ping => out.push_str(",\"kind\":\"ping\""),
            RequestBody::Shutdown => out.push_str(",\"kind\":\"shutdown\""),
        }
        out.push('}');
        out
    }
}

/// One response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A `run` request completed (individual jobs may still have failed —
    /// `failed` counts them, and the failure detail is in `output`).
    RunOk {
        /// Echo of the request id.
        id: RequestId,
        /// Number of jobs the compiled campaign ran.
        jobs: usize,
        /// Number of jobs that failed.
        failed: usize,
        /// The rendered report ([`crate::output::suite_output`]), rendered
        /// identically to the offline CLI `suite` output.
        output: String,
        /// Aggregated deterministic cache profile of the request's jobs,
        /// when the daemon ran them against a persistent store. Carried
        /// separately so `output` stays byte-identical to offline runs.
        cache: Option<CacheCounters>,
    },
    /// Answer to a `ping`.
    Pong {
        /// Echo of the request id.
        id: RequestId,
        /// Worker-pool width.
        workers: usize,
        /// Request-queue capacity.
        queue_capacity: usize,
    },
    /// Acknowledgement that the server is draining and will stop.
    ShutdownAck {
        /// Echo of the request id.
        id: RequestId,
    },
    /// A request failed before running.
    Error {
        /// Echo of the request id, when the frame carried a readable one.
        id: Option<RequestId>,
        /// Machine-readable discriminator ([`ServerError::kind`]).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The error response for a failed request.
    pub fn error(id: Option<RequestId>, error: &ServerError) -> Response {
        Response::Error {
            id,
            kind: error.kind().to_string(),
            message: error.to_string(),
        }
    }

    /// The request id the response echoes, if any.
    pub fn id(&self) -> Option<&RequestId> {
        match self {
            Response::RunOk { id, .. }
            | Response::Pong { id, .. }
            | Response::ShutdownAck { id } => Some(id),
            Response::Error { id, .. } => id.as_ref(),
        }
    }

    /// Encodes the response as one NDJSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            Response::RunOk {
                id,
                jobs,
                failed,
                output,
                cache,
            } => {
                out.push_str("{\"id\":");
                id.encode_into(&mut out);
                let _ = write!(
                    out,
                    ",\"status\":\"ok\",\"jobs\":{jobs},\"failed\":{failed}"
                );
                if let Some(c) = cache {
                    let _ = write!(
                        out,
                        ",\"cache\":{{\"mem_hits\":{},\"disk_hits\":{},\"misses\":{},\
                         \"evictions\":{}}}",
                        c.mem_hits, c.disk_hits, c.misses, c.evictions
                    );
                }
                out.push_str(",\"output\":\"");
                escape_into(&mut out, output);
                out.push('"');
            }
            Response::Pong {
                id,
                workers,
                queue_capacity,
            } => {
                out.push_str("{\"id\":");
                id.encode_into(&mut out);
                let _ = write!(
                    out,
                    ",\"status\":\"pong\",\"workers\":{workers},\"queue_capacity\":{queue_capacity}"
                );
            }
            Response::ShutdownAck { id } => {
                out.push_str("{\"id\":");
                id.encode_into(&mut out);
                out.push_str(",\"status\":\"shutting-down\"");
            }
            Response::Error { id, kind, message } => {
                out.push_str("{\"id\":");
                match id {
                    Some(id) => id.encode_into(&mut out),
                    None => out.push_str("null"),
                }
                out.push_str(",\"status\":\"error\",\"kind\":\"");
                escape_into(&mut out, kind);
                out.push_str("\",\"message\":\"");
                escape_into(&mut out, message);
                out.push('"');
            }
        }
        out.push('}');
        out
    }

    /// Decodes one response frame (the client half).
    ///
    /// # Errors
    ///
    /// [`ServerError::Malformed`]/[`ServerError::Invalid`] when the line is
    /// not a valid response frame.
    pub fn decode(line: &str) -> Result<Response, ServerError> {
        let frame = JsonValue::parse(line).map_err(ServerError::Malformed)?;
        let invalid = |message: &str| ServerError::Invalid(message.to_string());
        let id = match frame.get("id") {
            None => return Err(invalid("response needs an `id`")),
            Some(JsonValue::Null) => None,
            Some(v) => Some(decode_id(v)?),
        };
        let status = frame
            .get("status")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| invalid("response needs a string `status`"))?;
        let need_id = |id: Option<RequestId>| {
            id.ok_or_else(|| invalid("response `id` must not be null here"))
        };
        let need_count = |key: &str| {
            frame
                .get(key)
                .and_then(JsonValue::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| ServerError::Invalid(format!("response needs a numeric `{key}`")))
        };
        let cache = match frame.get("cache") {
            None | Some(JsonValue::Null) => None,
            Some(obj) => {
                let field = |key: &str| {
                    obj.get(key).and_then(JsonValue::as_u64).ok_or_else(|| {
                        ServerError::Invalid(format!("`cache` needs a numeric `{key}`"))
                    })
                };
                Some(CacheCounters {
                    mem_hits: field("mem_hits")?,
                    disk_hits: field("disk_hits")?,
                    misses: field("misses")?,
                    evictions: field("evictions")?,
                })
            }
        };
        match status {
            "ok" => Ok(Response::RunOk {
                id: need_id(id)?,
                jobs: need_count("jobs")?,
                failed: need_count("failed")?,
                output: require_str(&frame, "output", "ok")?.to_string(),
                cache,
            }),
            "pong" => Ok(Response::Pong {
                id: need_id(id)?,
                workers: need_count("workers")?,
                queue_capacity: need_count("queue_capacity")?,
            }),
            "shutting-down" => Ok(Response::ShutdownAck { id: need_id(id)? }),
            "error" => Ok(Response::Error {
                id,
                kind: require_str(&frame, "kind", "error")?.to_string(),
                message: require_str(&frame, "message", "error")?.to_string(),
            }),
            other => Err(ServerError::Invalid(format!(
                "unknown response status `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request {
                id: RequestId::Number(7),
                body: RequestBody::Run {
                    manifest: "suite ispd09\nprofile fast\n".to_string(),
                    report: ReportKind::Jsonl,
                    format: TableFormat::Csv,
                },
            },
            Request {
                id: RequestId::Text("probe-1".to_string()),
                body: RequestBody::Ping,
            },
            Request {
                id: RequestId::Number(0),
                body: RequestBody::Shutdown,
            },
        ];
        for request in requests {
            let line = request.encode();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Request::decode(&line).expect("decodes"), request);
        }
    }

    #[test]
    fn run_defaults_apply_when_report_and_format_are_absent() {
        let request =
            Request::decode(r#"{"id":1,"kind":"run","manifest":"suite ispd09"}"#).expect("decodes");
        assert_eq!(
            request.body,
            RequestBody::Run {
                manifest: "suite ispd09".to_string(),
                report: ReportKind::Table,
                format: TableFormat::Text,
            }
        );
    }

    #[test]
    fn bad_requests_salvage_the_id_when_possible() {
        // Malformed JSON: no id to salvage.
        let err = Request::decode("{\"id\":3,").unwrap_err();
        assert_eq!(err.id, None);
        assert!(matches!(err.error, ServerError::Malformed(_)));
        // Valid JSON, bad kind: id salvaged.
        let err = Request::decode(r#"{"id":3,"kind":"explode"}"#).unwrap_err();
        assert_eq!(err.id, Some(RequestId::Number(3)));
        assert!(matches!(err.error, ServerError::Invalid(_)));
        // Run without manifest: id salvaged.
        let err = Request::decode(r#"{"id":"a","kind":"run"}"#).unwrap_err();
        assert_eq!(err.id, Some(RequestId::Text("a".to_string())));
        // Fractional / negative ids are rejected.
        for line in [r#"{"id":1.5,"kind":"ping"}"#, r#"{"id":-1,"kind":"ping"}"#] {
            let err = Request::decode(line).unwrap_err();
            assert_eq!(err.id, None);
            assert!(matches!(err.error, ServerError::Invalid(_)));
        }
        // Non-object frames.
        let err = Request::decode("[1,2,3]").unwrap_err();
        assert!(matches!(err.error, ServerError::Invalid(_)));
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::RunOk {
                id: RequestId::Number(7),
                jobs: 28,
                failed: 2,
                output: "a\tb\n\"quoted\"\n".to_string(),
                cache: None,
            },
            Response::RunOk {
                id: RequestId::Number(8),
                jobs: 3,
                failed: 0,
                output: "ok\n".to_string(),
                cache: Some(CacheCounters {
                    mem_hits: 40,
                    disk_hits: 12,
                    misses: 3,
                    evictions: 1,
                }),
            },
            Response::Pong {
                id: RequestId::Text("probe".to_string()),
                workers: 4,
                queue_capacity: 64,
            },
            Response::ShutdownAck {
                id: RequestId::Number(9),
            },
            Response::error(None, &ServerError::Overloaded { capacity: 8 }),
            Response::error(
                Some(RequestId::Number(3)),
                &ServerError::Invalid("nope".to_string()),
            ),
        ];
        for response in responses {
            let line = response.encode();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Response::decode(&line).expect("decodes"), response);
        }
    }

    #[test]
    fn error_kinds_are_stable() {
        assert_eq!(
            ServerError::Malformed(JsonError {
                offset: 0,
                kind: crate::json::JsonErrorKind::UnexpectedEof
            })
            .kind(),
            "malformed"
        );
        assert_eq!(
            ServerError::Invalid(String::new()).kind(),
            "invalid-request"
        );
        assert_eq!(
            ServerError::Manifest(ManifestError::NoSources).kind(),
            "manifest"
        );
        assert_eq!(ServerError::Overloaded { capacity: 1 }.kind(), "overloaded");
        assert_eq!(ServerError::ShuttingDown.kind(), "shutting-down");
    }
}
