//! The `contango serve` wire protocol: one JSON object per line.
//!
//! Requests and responses travel as newline-delimited JSON (NDJSON) over a
//! plain TCP stream — the same framing as the campaign JSONL reports, so
//! the hand-rolled [`crate::jsonl`] encoder and [`crate::json`] decoder
//! cover both. Every frame is self-describing and carries the request
//! [`RequestId`] so responses can be matched even when a connection
//! pipelines many requests and the pool completes them out of order.
//!
//! Requests:
//!
//! ```text
//! {"id":1,"kind":"run","manifest":"suite ispd09\n...","report":"table","format":"text"}
//! {"id":2,"kind":"ping"}
//! {"id":3,"kind":"shutdown"}
//! ```
//!
//! Responses (`status` discriminates):
//!
//! ```text
//! {"id":1,"status":"ok","jobs":28,"failed":0,"output":"..."}
//! {"id":2,"status":"pong","workers":4,"queue_capacity":64}
//! {"id":3,"status":"shutting-down"}
//! {"id":1,"status":"error","kind":"overloaded","message":"..."}
//! ```
//!
//! Decoding is total: any line — malformed JSON, wrong types, unknown
//! kinds — yields a typed [`ServerError`], never a panic, and the server
//! answers it with a `status:"error"` frame ([`Response::Error`]) echoing
//! the request id whenever one could be salvaged from the frame.
//!
//! The distributed campaign runner ([`crate::dist`]) speaks a second frame
//! family over the same NDJSON framing, discriminated by a `frame` key.
//! Worker → coordinator ([`WorkerFrame`]):
//!
//! ```text
//! {"frame":"hello","protocol":1,"slots":2,"name":"w0"}
//! {"frame":"job-done","seq":12,"record":{"benchmark":"r1","tool":"contango",...}}
//! {"frame":"job-failed","seq":12,"message":"assignment references job 99 of 28"}
//! {"frame":"heartbeat"}
//! ```
//!
//! Coordinator → worker ([`CoordFrame`]):
//!
//! ```text
//! {"frame":"init","protocol":1,"manifest":"suite ispd09\n..."}
//! {"frame":"assign","seq":12,"job":3}
//! {"frame":"drain"}
//! ```
//!
//! `job-done` carries the **full-fidelity** job record — every summary and
//! stage field including wall-clock `runtime_s`, unlike the deliberately
//! wall-clock-free report JSONL of [`crate::jsonl`]. All floats are encoded
//! with Rust's shortest-round-trip `Display` and parsed back with
//! `str::parse::<f64>`, so a record survives the wire bit-identically and
//! the coordinator's aggregate reports match a serial in-process run byte
//! for byte. Job-level flow errors cross as their rendered message and are
//! reconstructed as [`CoreError::Remote`], whose `Display` is the message
//! verbatim — failure tables and JSONL stay byte-identical too.

use crate::json::{JsonError, JsonValue};
use crate::jsonl::{corners_into, escape_into, variation_into};
use crate::manifest::ManifestError;
use crate::output::{ReportKind, TableFormat};
use crate::runner::{CornerMetrics, JobMetrics, JobRecord, VariationMetrics};
use contango_benchmarks::report::RunSummary;
use contango_core::error::CoreError;
use contango_core::flow::StageSnapshot;
use contango_sim::{CacheCounters, VariationModel};
use std::fmt;
use std::fmt::Write as _;

/// A client-chosen request correlator, echoed verbatim in the response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestId {
    /// A non-negative integer id.
    Number(u64),
    /// A string id.
    Text(String),
}

impl RequestId {
    fn encode_into(&self, out: &mut String) {
        match self {
            RequestId::Number(n) => {
                let _ = write!(out, "{n}");
            }
            RequestId::Text(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
        }
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestId::Number(n) => write!(f, "{n}"),
            RequestId::Text(s) => write!(f, "{s}"),
        }
    }
}

/// What a request asks the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Compile the manifest text and run the resulting campaign.
    Run {
        /// Manifest text ([`crate::manifest`] format).
        manifest: String,
        /// Which report to render into the response `output`.
        report: ReportKind,
        /// Table layout for [`ReportKind::Table`].
        format: TableFormat,
    },
    /// Liveness/status probe.
    Ping,
    /// Drain in-flight and queued jobs, then stop the server.
    Shutdown,
}

/// One decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The client's correlator, echoed in the response.
    pub id: RequestId,
    /// The requested action.
    pub body: RequestBody,
}

/// A typed request failure, as reported to clients in a
/// [`Response::Error`] frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The frame is not valid JSON.
    Malformed(JsonError),
    /// The frame is valid JSON but not a valid request.
    Invalid(String),
    /// The request manifest failed to parse or compile.
    Manifest(ManifestError),
    /// The request queue is full; retry later.
    Overloaded {
        /// The queue capacity that was exceeded.
        capacity: usize,
    },
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl ServerError {
    /// The machine-readable error discriminator carried in the `kind`
    /// field of a [`Response::Error`] frame.
    pub fn kind(&self) -> &'static str {
        match self {
            ServerError::Malformed(_) => "malformed",
            ServerError::Invalid(_) => "invalid-request",
            ServerError::Manifest(_) => "manifest",
            ServerError::Overloaded { .. } => "overloaded",
            ServerError::ShuttingDown => "shutting-down",
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Malformed(e) => write!(f, "malformed request frame: {e}"),
            ServerError::Invalid(message) => write!(f, "invalid request: {message}"),
            ServerError::Manifest(e) => write!(f, "manifest error: {e}"),
            ServerError::Overloaded { capacity } => {
                write!(f, "request queue is full ({capacity} pending); retry later")
            }
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServerError {}

/// A request decode failure: the error, plus the request id when one could
/// still be salvaged from the frame (so the error response can echo it).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// The salvaged request id, if the frame carried a readable one.
    pub id: Option<RequestId>,
    /// What was wrong with the frame.
    pub error: ServerError,
}

/// Reads an `id` field as a [`RequestId`].
fn decode_id(value: &JsonValue) -> Result<RequestId, ServerError> {
    match value {
        JsonValue::String(s) => Ok(RequestId::Text(s.clone())),
        JsonValue::Number(_) => value.as_u64().map(RequestId::Number).ok_or_else(|| {
            ServerError::Invalid("`id` must be a non-negative integer or a string".to_string())
        }),
        _ => Err(ServerError::Invalid(
            "`id` must be a non-negative integer or a string".to_string(),
        )),
    }
}

fn require_str<'a>(frame: &'a JsonValue, key: &str, kind: &str) -> Result<&'a str, ServerError> {
    frame
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ServerError::Invalid(format!("`{kind}` request needs a string `{key}`")))
}

impl Request {
    /// Decodes one request frame.
    ///
    /// # Errors
    ///
    /// Returns a [`RequestError`] carrying the salvaged id (when the frame
    /// had a readable one) and the typed [`ServerError`] to report.
    pub fn decode(line: &str) -> Result<Request, RequestError> {
        let no_id = |error: ServerError| RequestError { id: None, error };
        let frame = JsonValue::parse(line).map_err(|e| no_id(ServerError::Malformed(e)))?;
        if !matches!(frame, JsonValue::Object(_)) {
            return Err(no_id(ServerError::Invalid(
                "request frame must be a JSON object".to_string(),
            )));
        }
        let id = frame
            .get("id")
            .ok_or_else(|| no_id(ServerError::Invalid("request needs an `id`".to_string())))
            .and_then(|v| decode_id(v).map_err(no_id))?;
        let with_id = |error: ServerError| RequestError {
            id: Some(id.clone()),
            error,
        };
        let kind = frame
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| {
                with_id(ServerError::Invalid(
                    "request needs a string `kind`".to_string(),
                ))
            })?;
        let body = match kind {
            "run" => {
                let manifest = require_str(&frame, "manifest", "run").map_err(&with_id)?;
                let report = match frame.get("report") {
                    None => ReportKind::default(),
                    Some(v) => v.as_str().and_then(ReportKind::from_label).ok_or_else(|| {
                        with_id(ServerError::Invalid(
                            "`report` must be \"table\", \"jsonl\", \"pareto\" or \
                             \"frontier-jsonl\""
                                .to_string(),
                        ))
                    })?,
                };
                let format = match frame.get("format") {
                    None => TableFormat::default(),
                    Some(v) => v
                        .as_str()
                        .and_then(TableFormat::from_label)
                        .ok_or_else(|| {
                            with_id(ServerError::Invalid(
                                "`format` must be \"text\", \"markdown\" or \"csv\"".to_string(),
                            ))
                        })?,
                };
                RequestBody::Run {
                    manifest: manifest.to_string(),
                    report,
                    format,
                }
            }
            "ping" => RequestBody::Ping,
            "shutdown" => RequestBody::Shutdown,
            other => {
                return Err(with_id(ServerError::Invalid(format!(
                    "unknown request kind `{other}`"
                ))))
            }
        };
        Ok(Request { id, body })
    }

    /// Encodes the request as one NDJSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"id\":");
        self.id.encode_into(&mut out);
        match &self.body {
            RequestBody::Run {
                manifest,
                report,
                format,
            } => {
                let _ = write!(
                    out,
                    ",\"kind\":\"run\",\"report\":\"{}\",\"format\":\"{}\",\"manifest\":\"",
                    report.label(),
                    format.label()
                );
                escape_into(&mut out, manifest);
                out.push('"');
            }
            RequestBody::Ping => out.push_str(",\"kind\":\"ping\""),
            RequestBody::Shutdown => out.push_str(",\"kind\":\"shutdown\""),
        }
        out.push('}');
        out
    }
}

/// One response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A `run` request completed (individual jobs may still have failed —
    /// `failed` counts them, and the failure detail is in `output`).
    RunOk {
        /// Echo of the request id.
        id: RequestId,
        /// Number of jobs the compiled campaign ran.
        jobs: usize,
        /// Number of jobs that failed.
        failed: usize,
        /// The rendered report ([`crate::output::suite_output`]), rendered
        /// identically to the offline CLI `suite` output.
        output: String,
        /// Aggregated deterministic cache profile of the request's jobs,
        /// when the daemon ran them against a persistent store. Carried
        /// separately so `output` stays byte-identical to offline runs.
        cache: Option<CacheCounters>,
    },
    /// Answer to a `ping`.
    Pong {
        /// Echo of the request id.
        id: RequestId,
        /// Worker-pool width.
        workers: usize,
        /// Request-queue capacity.
        queue_capacity: usize,
    },
    /// Acknowledgement that the server is draining and will stop.
    ShutdownAck {
        /// Echo of the request id.
        id: RequestId,
    },
    /// A request failed before running.
    Error {
        /// Echo of the request id, when the frame carried a readable one.
        id: Option<RequestId>,
        /// Machine-readable discriminator ([`ServerError::kind`]).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The error response for a failed request.
    pub fn error(id: Option<RequestId>, error: &ServerError) -> Response {
        Response::Error {
            id,
            kind: error.kind().to_string(),
            message: error.to_string(),
        }
    }

    /// The request id the response echoes, if any.
    pub fn id(&self) -> Option<&RequestId> {
        match self {
            Response::RunOk { id, .. }
            | Response::Pong { id, .. }
            | Response::ShutdownAck { id } => Some(id),
            Response::Error { id, .. } => id.as_ref(),
        }
    }

    /// Encodes the response as one NDJSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            Response::RunOk {
                id,
                jobs,
                failed,
                output,
                cache,
            } => {
                out.push_str("{\"id\":");
                id.encode_into(&mut out);
                let _ = write!(
                    out,
                    ",\"status\":\"ok\",\"jobs\":{jobs},\"failed\":{failed}"
                );
                if let Some(c) = cache {
                    let _ = write!(
                        out,
                        ",\"cache\":{{\"mem_hits\":{},\"disk_hits\":{},\"misses\":{},\
                         \"evictions\":{}}}",
                        c.mem_hits, c.disk_hits, c.misses, c.evictions
                    );
                }
                out.push_str(",\"output\":\"");
                escape_into(&mut out, output);
                out.push('"');
            }
            Response::Pong {
                id,
                workers,
                queue_capacity,
            } => {
                out.push_str("{\"id\":");
                id.encode_into(&mut out);
                let _ = write!(
                    out,
                    ",\"status\":\"pong\",\"workers\":{workers},\"queue_capacity\":{queue_capacity}"
                );
            }
            Response::ShutdownAck { id } => {
                out.push_str("{\"id\":");
                id.encode_into(&mut out);
                out.push_str(",\"status\":\"shutting-down\"");
            }
            Response::Error { id, kind, message } => {
                out.push_str("{\"id\":");
                match id {
                    Some(id) => id.encode_into(&mut out),
                    None => out.push_str("null"),
                }
                out.push_str(",\"status\":\"error\",\"kind\":\"");
                escape_into(&mut out, kind);
                out.push_str("\",\"message\":\"");
                escape_into(&mut out, message);
                out.push('"');
            }
        }
        out.push('}');
        out
    }

    /// Decodes one response frame (the client half).
    ///
    /// # Errors
    ///
    /// [`ServerError::Malformed`]/[`ServerError::Invalid`] when the line is
    /// not a valid response frame.
    pub fn decode(line: &str) -> Result<Response, ServerError> {
        let frame = JsonValue::parse(line).map_err(ServerError::Malformed)?;
        let invalid = |message: &str| ServerError::Invalid(message.to_string());
        let id = match frame.get("id") {
            None => return Err(invalid("response needs an `id`")),
            Some(JsonValue::Null) => None,
            Some(v) => Some(decode_id(v)?),
        };
        let status = frame
            .get("status")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| invalid("response needs a string `status`"))?;
        let need_id = |id: Option<RequestId>| {
            id.ok_or_else(|| invalid("response `id` must not be null here"))
        };
        let need_count = |key: &str| {
            frame
                .get(key)
                .and_then(JsonValue::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| ServerError::Invalid(format!("response needs a numeric `{key}`")))
        };
        let cache = decode_cache_field(&frame)?;
        match status {
            "ok" => Ok(Response::RunOk {
                id: need_id(id)?,
                jobs: need_count("jobs")?,
                failed: need_count("failed")?,
                output: require_str(&frame, "output", "ok")?.to_string(),
                cache,
            }),
            "pong" => Ok(Response::Pong {
                id: need_id(id)?,
                workers: need_count("workers")?,
                queue_capacity: need_count("queue_capacity")?,
            }),
            "shutting-down" => Ok(Response::ShutdownAck { id: need_id(id)? }),
            "error" => Ok(Response::Error {
                id,
                kind: require_str(&frame, "kind", "error")?.to_string(),
                message: require_str(&frame, "message", "error")?.to_string(),
            }),
            other => Err(ServerError::Invalid(format!(
                "unknown response status `{other}`"
            ))),
        }
    }
}

/// Reads an optional `cache` object as [`CacheCounters`]. Shared between
/// [`Response::decode`] and the distributed job-record codec.
fn decode_cache_field(frame: &JsonValue) -> Result<Option<CacheCounters>, ServerError> {
    match frame.get("cache") {
        None | Some(JsonValue::Null) => Ok(None),
        Some(obj) => {
            let field = |key: &str| {
                obj.get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| ServerError::Invalid(format!("`cache` needs a numeric `{key}`")))
            };
            Ok(Some(CacheCounters {
                mem_hits: field("mem_hits")?,
                disk_hits: field("disk_hits")?,
                misses: field("misses")?,
                evictions: field("evictions")?,
            }))
        }
    }
}

/// Version of the distributed-campaign frame protocol. Workers announce it
/// in `hello`, the coordinator in `init`; either side drops a mismatched
/// peer instead of guessing.
pub const DIST_PROTOCOL: u64 = 1;

fn require_u64(frame: &JsonValue, key: &str, kind: &str) -> Result<u64, ServerError> {
    frame.get(key).and_then(JsonValue::as_u64).ok_or_else(|| {
        ServerError::Invalid(format!(
            "`{kind}` frame needs a non-negative integer `{key}`"
        ))
    })
}

fn require_f64(obj: &JsonValue, key: &str, kind: &str) -> Result<f64, ServerError> {
    obj.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| ServerError::Invalid(format!("`{kind}` needs a numeric `{key}`")))
}

/// Encodes a [`JobRecord`] at full fidelity (every summary and stage field,
/// including wall-clock `runtime_s`). Floats use shortest-round-trip
/// `Display`, so `decode_record(encode) == original` bit for bit.
fn encode_record_into(out: &mut String, record: &JobRecord) {
    out.push_str("{\"benchmark\":\"");
    escape_into(out, &record.benchmark);
    out.push_str("\",\"tool\":\"");
    escape_into(out, &record.tool);
    let _ = write!(out, "\",\"sinks\":{}", record.sinks);
    match &record.outcome {
        Ok(metrics) => {
            let s = &metrics.summary;
            let _ = write!(
                out,
                ",\"status\":\"ok\",\"summary\":{{\"clr\":{},\"skew\":{},\
                 \"max_latency\":{},\"cap_pct\":{},\"wirelength\":{},\
                 \"buffers\":{},\"spice_runs\":{},\"runtime_s\":{}}}",
                s.clr,
                s.skew,
                s.max_latency,
                s.cap_pct,
                s.wirelength,
                s.buffers,
                s.spice_runs,
                s.runtime_s
            );
            out.push_str(",\"stages\":[");
            for (i, snap) in metrics.snapshots.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"stage\":\"");
                escape_into(out, &snap.stage);
                let _ = write!(
                    out,
                    "\",\"clr\":{},\"skew\":{},\"max_latency\":{},\"total_cap\":{},\
                     \"wirelength\":{},\"slew_violation\":{}}}",
                    snap.clr,
                    snap.skew,
                    snap.max_latency,
                    snap.total_cap,
                    snap.wirelength,
                    snap.slew_violation
                );
            }
            out.push(']');
            corners_into(out, &metrics.corners);
            if let Some(variation) = &metrics.variation {
                variation_into(out, variation);
            }
        }
        Err(error) => {
            out.push_str(",\"status\":\"error\",\"error\":\"");
            escape_into(out, &error.to_string());
            out.push('"');
        }
    }
    if let Some(c) = &record.cache {
        let _ = write!(
            out,
            ",\"cache\":{{\"mem_hits\":{},\"disk_hits\":{},\"misses\":{},\
             \"evictions\":{}}}",
            c.mem_hits, c.disk_hits, c.misses, c.evictions
        );
    }
    out.push('}');
}

/// Decodes a full-fidelity [`JobRecord`]. Flow errors come back as
/// [`CoreError::Remote`] carrying the original rendered message.
fn decode_record(obj: &JsonValue) -> Result<JobRecord, ServerError> {
    if !matches!(obj, JsonValue::Object(_)) {
        return Err(ServerError::Invalid(
            "`record` must be a JSON object".to_string(),
        ));
    }
    let benchmark = require_str(obj, "benchmark", "record")?.to_string();
    let tool = require_str(obj, "tool", "record")?.to_string();
    let sinks = require_u64(obj, "sinks", "record")? as usize;
    let outcome = match require_str(obj, "status", "record")? {
        "ok" => {
            let s = obj
                .get("summary")
                .filter(|v| matches!(v, JsonValue::Object(_)))
                .ok_or_else(|| {
                    ServerError::Invalid("`record` needs a `summary` object".to_string())
                })?;
            let summary = RunSummary {
                benchmark: benchmark.clone(),
                tool: tool.clone(),
                clr: require_f64(s, "clr", "summary")?,
                skew: require_f64(s, "skew", "summary")?,
                max_latency: require_f64(s, "max_latency", "summary")?,
                cap_pct: require_f64(s, "cap_pct", "summary")?,
                wirelength: require_f64(s, "wirelength", "summary")?,
                buffers: require_u64(s, "buffers", "summary")? as usize,
                spice_runs: require_u64(s, "spice_runs", "summary")? as usize,
                runtime_s: require_f64(s, "runtime_s", "summary")?,
            };
            let stages = obj
                .get("stages")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| {
                    ServerError::Invalid("`record` needs a `stages` array".to_string())
                })?;
            let mut snapshots = Vec::with_capacity(stages.len());
            for snap in stages {
                snapshots.push(StageSnapshot {
                    stage: require_str(snap, "stage", "stage")?.to_string(),
                    clr: require_f64(snap, "clr", "stage")?,
                    skew: require_f64(snap, "skew", "stage")?,
                    max_latency: require_f64(snap, "max_latency", "stage")?,
                    total_cap: require_f64(snap, "total_cap", "stage")?,
                    wirelength: require_f64(snap, "wirelength", "stage")?,
                    slew_violation: snap
                        .get("slew_violation")
                        .and_then(JsonValue::as_bool)
                        .ok_or_else(|| {
                            ServerError::Invalid(
                                "`stage` needs a boolean `slew_violation`".to_string(),
                            )
                        })?,
                });
            }
            Ok(JobMetrics {
                summary,
                snapshots,
                corners: decode_corners_field(obj)?,
                variation: decode_variation_field(obj)?,
            })
        }
        "error" => Err(CoreError::Remote {
            message: require_str(obj, "error", "record")?.to_string(),
        }),
        other => {
            return Err(ServerError::Invalid(format!(
                "unknown record status `{other}`"
            )))
        }
    };
    Ok(JobRecord {
        benchmark,
        tool,
        sinks,
        outcome,
        cache: decode_cache_field(obj)?,
    })
}

/// Reads the optional `corners` array of a record (absent = corner-less
/// job; the encoder omits the key when the list is empty).
fn decode_corners_field(obj: &JsonValue) -> Result<Vec<CornerMetrics>, ServerError> {
    let Some(corners) = obj.get("corners") else {
        return Ok(Vec::new());
    };
    let corners = corners.as_array().ok_or_else(|| {
        ServerError::Invalid("`corners` must be an array of corner objects".to_string())
    })?;
    corners
        .iter()
        .map(|c| {
            Ok(CornerMetrics {
                corner: require_str(c, "corner", "corner")?.to_string(),
                clr: require_f64(c, "clr", "corner")?,
                skew: require_f64(c, "skew", "corner")?,
                max_latency: require_f64(c, "max_latency", "corner")?,
            })
        })
        .collect()
}

/// Decodes a [`VariationModel`] object — the model's real wire codec (its
/// serde derive was a no-op against the vendored stub); the matching
/// encoder is [`crate::jsonl::variation_model_into`].
pub(crate) fn decode_variation_model(obj: &JsonValue) -> Result<VariationModel, ServerError> {
    Ok(VariationModel {
        wire_res_sigma: require_f64(obj, "wire_res_sigma", "model")?,
        wire_cap_sigma: require_f64(obj, "wire_cap_sigma", "model")?,
        buffer_res_sigma: require_f64(obj, "buffer_res_sigma", "model")?,
        vdd_sigma: require_f64(obj, "vdd_sigma", "model")?,
        spatial_correlation: require_f64(obj, "spatial_correlation", "model")?,
    })
}

/// Reads the optional `variation` block of a record.
fn decode_variation_field(obj: &JsonValue) -> Result<Option<VariationMetrics>, ServerError> {
    let Some(variation) = obj.get("variation") else {
        return Ok(None);
    };
    let model = variation
        .get("model")
        .filter(|v| matches!(v, JsonValue::Object(_)))
        .ok_or_else(|| ServerError::Invalid("`variation` needs a `model` object".to_string()))?;
    let skews = variation
        .get("skews")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| ServerError::Invalid("`variation` needs a `skews` array".to_string()))?
        .iter()
        .map(|v| {
            v.as_f64().ok_or_else(|| {
                ServerError::Invalid("`skews` must contain only numbers".to_string())
            })
        })
        .collect::<Result<Vec<f64>, ServerError>>()?;
    Ok(Some(VariationMetrics {
        samples: require_u64(variation, "samples", "variation")? as usize,
        seed: require_u64(variation, "seed", "variation")?,
        model: decode_variation_model(model)?,
        skews,
        worst_skew: require_f64(variation, "worst_skew", "variation")?,
        mean_skew: require_f64(variation, "mean_skew", "variation")?,
    }))
}

/// Reads the `frame` discriminator of a dist frame.
fn frame_kind(frame: &JsonValue) -> Result<&str, ServerError> {
    if !matches!(frame, JsonValue::Object(_)) {
        return Err(ServerError::Invalid(
            "frame must be a JSON object".to_string(),
        ));
    }
    frame
        .get("frame")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ServerError::Invalid("frame needs a string `frame` kind".to_string()))
}

/// A frame a distributed-campaign worker sends to its coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerFrame {
    /// First frame on a connection: the worker introduces itself and
    /// declares how many jobs it can hold in flight.
    Hello {
        /// The worker's [`DIST_PROTOCOL`] version.
        protocol: u64,
        /// In-flight job capacity (one warm session per slot).
        slots: usize,
        /// Display name for logs and stats.
        name: String,
    },
    /// An assignment completed. Job-level **flow** errors are still
    /// `job-done` — the record's outcome carries them, because they are
    /// deterministic results that must reduce byte-identically. Only
    /// infrastructure failures use [`WorkerFrame::JobFailed`].
    JobDone {
        /// The assignment's [`CoordFrame::Assign`] sequence number.
        seq: u64,
        /// The full-fidelity job record (boxed: a record with corner and
        /// variation metrics dwarfs every other frame variant).
        record: Box<JobRecord>,
    },
    /// The worker could not run an assignment at all (job index out of
    /// range, no init received); the coordinator requeues the job against
    /// its retry budget.
    JobFailed {
        /// The assignment's sequence number.
        seq: u64,
        /// Human-readable reason.
        message: String,
    },
    /// Liveness signal, sent on an interval while connected.
    Heartbeat,
}

impl WorkerFrame {
    /// Encodes the frame as one NDJSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            WorkerFrame::Hello {
                protocol,
                slots,
                name,
            } => {
                let _ = write!(
                    out,
                    "{{\"frame\":\"hello\",\"protocol\":{protocol},\"slots\":{slots},\"name\":\""
                );
                escape_into(&mut out, name);
                out.push_str("\"}");
            }
            WorkerFrame::JobDone { seq, record } => {
                let _ = write!(out, "{{\"frame\":\"job-done\",\"seq\":{seq},\"record\":");
                encode_record_into(&mut out, record);
                out.push('}');
            }
            WorkerFrame::JobFailed { seq, message } => {
                let _ = write!(
                    out,
                    "{{\"frame\":\"job-failed\",\"seq\":{seq},\"message\":\""
                );
                escape_into(&mut out, message);
                out.push_str("\"}");
            }
            WorkerFrame::Heartbeat => out.push_str("{\"frame\":\"heartbeat\"}"),
        }
        out
    }

    /// Decodes one worker frame.
    ///
    /// # Errors
    ///
    /// [`ServerError::Malformed`]/[`ServerError::Invalid`] when the line is
    /// not a valid worker frame. Decoding is total — no input panics.
    pub fn decode(line: &str) -> Result<WorkerFrame, ServerError> {
        let frame = JsonValue::parse(line).map_err(ServerError::Malformed)?;
        match frame_kind(&frame)? {
            "hello" => Ok(WorkerFrame::Hello {
                protocol: require_u64(&frame, "protocol", "hello")?,
                slots: require_u64(&frame, "slots", "hello")? as usize,
                name: require_str(&frame, "name", "hello")?.to_string(),
            }),
            "job-done" => Ok(WorkerFrame::JobDone {
                seq: require_u64(&frame, "seq", "job-done")?,
                record: Box::new(decode_record(frame.get("record").ok_or_else(|| {
                    ServerError::Invalid("`job-done` frame needs a `record`".to_string())
                })?)?),
            }),
            "job-failed" => Ok(WorkerFrame::JobFailed {
                seq: require_u64(&frame, "seq", "job-failed")?,
                message: require_str(&frame, "message", "job-failed")?.to_string(),
            }),
            "heartbeat" => Ok(WorkerFrame::Heartbeat),
            other => Err(ServerError::Invalid(format!(
                "unknown worker frame `{other}`"
            ))),
        }
    }
}

/// A frame the distributed-campaign coordinator sends to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordFrame {
    /// First frame after a worker's hello: the manifest whose compiled job
    /// list both sides share. Assignments address jobs by index into it.
    Init {
        /// The coordinator's [`DIST_PROTOCOL`] version.
        protocol: u64,
        /// Manifest text ([`crate::manifest`] format).
        manifest: String,
    },
    /// Run one job of the shared job list.
    Assign {
        /// Coordinator-unique assignment sequence number, echoed in the
        /// worker's `job-done`/`job-failed`.
        seq: u64,
        /// Index into the compiled job list.
        job: usize,
    },
    /// No more work — finish in-flight jobs and disconnect.
    Drain,
}

impl CoordFrame {
    /// Encodes the frame as one NDJSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            CoordFrame::Init { protocol, manifest } => {
                let _ = write!(
                    out,
                    "{{\"frame\":\"init\",\"protocol\":{protocol},\"manifest\":\""
                );
                escape_into(&mut out, manifest);
                out.push_str("\"}");
            }
            CoordFrame::Assign { seq, job } => {
                let _ = write!(out, "{{\"frame\":\"assign\",\"seq\":{seq},\"job\":{job}}}");
            }
            CoordFrame::Drain => out.push_str("{\"frame\":\"drain\"}"),
        }
        out
    }

    /// Decodes one coordinator frame.
    ///
    /// # Errors
    ///
    /// [`ServerError::Malformed`]/[`ServerError::Invalid`] when the line is
    /// not a valid coordinator frame. Decoding is total — no input panics.
    pub fn decode(line: &str) -> Result<CoordFrame, ServerError> {
        let frame = JsonValue::parse(line).map_err(ServerError::Malformed)?;
        match frame_kind(&frame)? {
            "init" => Ok(CoordFrame::Init {
                protocol: require_u64(&frame, "protocol", "init")?,
                manifest: require_str(&frame, "manifest", "init")?.to_string(),
            }),
            "assign" => Ok(CoordFrame::Assign {
                seq: require_u64(&frame, "seq", "assign")?,
                job: require_u64(&frame, "job", "assign")? as usize,
            }),
            "drain" => Ok(CoordFrame::Drain),
            other => Err(ServerError::Invalid(format!(
                "unknown coordinator frame `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request {
                id: RequestId::Number(7),
                body: RequestBody::Run {
                    manifest: "suite ispd09\nprofile fast\n".to_string(),
                    report: ReportKind::Jsonl,
                    format: TableFormat::Csv,
                },
            },
            Request {
                id: RequestId::Text("probe-1".to_string()),
                body: RequestBody::Ping,
            },
            Request {
                id: RequestId::Number(0),
                body: RequestBody::Shutdown,
            },
        ];
        for request in requests {
            let line = request.encode();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Request::decode(&line).expect("decodes"), request);
        }
    }

    #[test]
    fn run_defaults_apply_when_report_and_format_are_absent() {
        let request =
            Request::decode(r#"{"id":1,"kind":"run","manifest":"suite ispd09"}"#).expect("decodes");
        assert_eq!(
            request.body,
            RequestBody::Run {
                manifest: "suite ispd09".to_string(),
                report: ReportKind::Table,
                format: TableFormat::Text,
            }
        );
    }

    #[test]
    fn bad_requests_salvage_the_id_when_possible() {
        // Malformed JSON: no id to salvage.
        let err = Request::decode("{\"id\":3,").unwrap_err();
        assert_eq!(err.id, None);
        assert!(matches!(err.error, ServerError::Malformed(_)));
        // Valid JSON, bad kind: id salvaged.
        let err = Request::decode(r#"{"id":3,"kind":"explode"}"#).unwrap_err();
        assert_eq!(err.id, Some(RequestId::Number(3)));
        assert!(matches!(err.error, ServerError::Invalid(_)));
        // Run without manifest: id salvaged.
        let err = Request::decode(r#"{"id":"a","kind":"run"}"#).unwrap_err();
        assert_eq!(err.id, Some(RequestId::Text("a".to_string())));
        // Fractional / negative ids are rejected.
        for line in [r#"{"id":1.5,"kind":"ping"}"#, r#"{"id":-1,"kind":"ping"}"#] {
            let err = Request::decode(line).unwrap_err();
            assert_eq!(err.id, None);
            assert!(matches!(err.error, ServerError::Invalid(_)));
        }
        // Non-object frames.
        let err = Request::decode("[1,2,3]").unwrap_err();
        assert!(matches!(err.error, ServerError::Invalid(_)));
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::RunOk {
                id: RequestId::Number(7),
                jobs: 28,
                failed: 2,
                output: "a\tb\n\"quoted\"\n".to_string(),
                cache: None,
            },
            Response::RunOk {
                id: RequestId::Number(8),
                jobs: 3,
                failed: 0,
                output: "ok\n".to_string(),
                cache: Some(CacheCounters {
                    mem_hits: 40,
                    disk_hits: 12,
                    misses: 3,
                    evictions: 1,
                }),
            },
            Response::Pong {
                id: RequestId::Text("probe".to_string()),
                workers: 4,
                queue_capacity: 64,
            },
            Response::ShutdownAck {
                id: RequestId::Number(9),
            },
            Response::error(None, &ServerError::Overloaded { capacity: 8 }),
            Response::error(
                Some(RequestId::Number(3)),
                &ServerError::Invalid("nope".to_string()),
            ),
        ];
        for response in responses {
            let line = response.encode();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Response::decode(&line).expect("decodes"), response);
        }
    }

    fn sample_ok_record() -> JobRecord {
        JobRecord {
            benchmark: "r1".to_string(),
            tool: "contango".to_string(),
            sinks: 267,
            outcome: Ok(JobMetrics {
                summary: RunSummary {
                    benchmark: "r1".to_string(),
                    tool: "contango".to_string(),
                    clr: 0.1 + 0.2, // deliberately not representable exactly
                    skew: -0.0,
                    max_latency: 1234.5678901234567,
                    cap_pct: 87.3,
                    wirelength: 1.0e-12,
                    buffers: 41,
                    spice_runs: 902,
                    runtime_s: 0.037218812,
                },
                snapshots: vec![
                    StageSnapshot {
                        stage: "INITIAL".to_string(),
                        clr: 42.0,
                        skew: 17.25,
                        max_latency: 900.0,
                        total_cap: 8.5e3,
                        wirelength: 120_000.5,
                        slew_violation: false,
                    },
                    StageSnapshot {
                        stage: "TBSZ".to_string(),
                        clr: 12.000000000000002,
                        skew: 3.3,
                        max_latency: 880.0,
                        total_cap: 9.0e3,
                        wirelength: 119_000.0,
                        slew_violation: true,
                    },
                ],
                corners: vec![
                    CornerMetrics {
                        corner: "slow".to_string(),
                        clr: 13.7,
                        skew: 4.125,
                        max_latency: 910.0000000000001,
                    },
                    CornerMetrics {
                        corner: "low-vdd".to_string(),
                        clr: 15.0,
                        skew: 5.5,
                        max_latency: 1024.0,
                    },
                ],
                variation: Some(VariationMetrics {
                    samples: 3,
                    seed: 0xC0FFEE,
                    model: VariationModel::typical_45nm(),
                    skews: vec![3.1000000000000005, 2.9, 0.1 + 0.2],
                    worst_skew: 3.1000000000000005,
                    mean_skew: 2.1000000000000005,
                }),
            }),
            cache: Some(CacheCounters {
                mem_hits: 11,
                disk_hits: 4,
                misses: 2,
                evictions: 0,
            }),
        }
    }

    #[test]
    fn worker_frames_round_trip() {
        let failed = JobRecord {
            benchmark: "r2\"quoted\"".to_string(),
            tool: "weak-buffering".to_string(),
            sinks: 598,
            outcome: Err(CoreError::Remote {
                message: "pass TBSZ: no composite configuration fits".to_string(),
            }),
            cache: None,
        };
        let frames = [
            WorkerFrame::Hello {
                protocol: DIST_PROTOCOL,
                slots: 2,
                name: "worker-0\nline".to_string(),
            },
            WorkerFrame::JobDone {
                seq: 12,
                record: Box::new(sample_ok_record()),
            },
            WorkerFrame::JobDone {
                seq: 13,
                record: Box::new(failed),
            },
            WorkerFrame::JobFailed {
                seq: 14,
                message: "assignment references job 99 of 28".to_string(),
            },
            WorkerFrame::Heartbeat,
        ];
        for frame in frames {
            let line = frame.encode();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(WorkerFrame::decode(&line).expect("decodes"), frame);
        }
    }

    #[test]
    fn job_records_cross_the_wire_bit_identically() {
        // A structured flow error crosses as its rendered message and must
        // render identically on the coordinator side.
        let original = CoreError::Pass {
            pass: "TBSZ".to_string(),
            source: Box::new(CoreError::BufferBudget {
                budget_ff: 900.0,
                budget_pct: 90.0,
            }),
        };
        let record = JobRecord {
            benchmark: "r3".to_string(),
            tool: "contango".to_string(),
            sinks: 862,
            outcome: Err(original.clone()),
            cache: None,
        };
        let line = WorkerFrame::JobDone {
            seq: 1,
            record: Box::new(record),
        }
        .encode();
        let WorkerFrame::JobDone { record, .. } = WorkerFrame::decode(&line).expect("decodes")
        else {
            panic!("wrong frame");
        };
        let remote = record.outcome.expect_err("error outcome survives");
        assert_eq!(remote.to_string(), original.to_string());

        // Floats survive encode -> decode -> re-encode byte-identically.
        let first = WorkerFrame::JobDone {
            seq: 2,
            record: Box::new(sample_ok_record()),
        }
        .encode();
        let reencoded = WorkerFrame::decode(&first).expect("decodes").encode();
        assert_eq!(first, reencoded);
    }

    #[test]
    fn coord_frames_round_trip() {
        let frames = [
            CoordFrame::Init {
                protocol: DIST_PROTOCOL,
                manifest: "suite ispd09\nprofile fast\n".to_string(),
            },
            CoordFrame::Assign { seq: 7, job: 3 },
            CoordFrame::Drain,
        ];
        for frame in frames {
            let line = frame.encode();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(CoordFrame::decode(&line).expect("decodes"), frame);
        }
    }

    #[test]
    fn dist_frames_reject_garbage_with_typed_errors() {
        for line in [
            "",
            "{\"frame\":\"hello\"",
            "[1,2]",
            r#"{"frame":"explode"}"#,
            r#"{"frame":"hello","protocol":-1,"slots":2,"name":"w"}"#,
            r#"{"frame":"job-done","seq":1}"#,
            r#"{"frame":"job-done","seq":1,"record":{"benchmark":"b","tool":"t","sinks":1,"status":"what"}}"#,
            r#"{"frame":"job-done","seq":1,"record":{"benchmark":"b","tool":"t","sinks":1,"status":"ok"}}"#,
            r#"{"frame":"job-done","seq":1,"record":{"benchmark":"b","tool":"t","sinks":1,"status":"ok","summary":{"clr":1,"skew":1,"max_latency":1,"cap_pct":1,"wirelength":1,"buffers":1,"spice_runs":1,"runtime_s":1},"stages":[],"corners":7}}"#,
            r#"{"frame":"job-done","seq":1,"record":{"benchmark":"b","tool":"t","sinks":1,"status":"ok","summary":{"clr":1,"skew":1,"max_latency":1,"cap_pct":1,"wirelength":1,"buffers":1,"spice_runs":1,"runtime_s":1},"stages":[],"variation":{"samples":1}}}"#,
        ] {
            assert!(WorkerFrame::decode(line).is_err(), "{line}");
        }
        for line in ["", r#"{"frame":"assign","seq":1}"#, r#"{"frame":7}"#] {
            assert!(CoordFrame::decode(line).is_err(), "{line}");
        }
    }

    #[test]
    fn error_kinds_are_stable() {
        assert_eq!(
            ServerError::Malformed(JsonError {
                offset: 0,
                kind: crate::json::JsonErrorKind::UnexpectedEof
            })
            .kind(),
            "malformed"
        );
        assert_eq!(
            ServerError::Invalid(String::new()).kind(),
            "invalid-request"
        );
        assert_eq!(
            ServerError::Manifest(ManifestError::NoSources).kind(),
            "manifest"
        );
        assert_eq!(ServerError::Overloaded { capacity: 1 }.kind(), "overloaded");
        assert_eq!(ServerError::ShuttingDown.kind(), "shutting-down");
    }
}
