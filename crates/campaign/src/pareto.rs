//! Deterministic Pareto-frontier reduction of campaign results.
//!
//! A variation-aware campaign produces one [`JobMetrics`] per (benchmark,
//! tool) cell, each carrying a worst-case skew across every corner and
//! Monte-Carlo sample next to its capacitance and wirelength cost. This
//! module reduces those cells to the Pareto frontier over
//! `(worst-case skew, cap %, wirelength)` — the set of runs no other run
//! beats on every objective at once.
//!
//! Determinism is the point: the frontier of a point set does not depend on
//! the order the points arrive in, and the rendered frontier is sorted by
//! `(benchmark, tool)`, so the report is byte-identical for every thread
//! count, worker count, submission order and cache state — the same
//! guarantee every other campaign report gives.
//!
//! [`sweep_jobs`] is the matching fan-out: it expands one job into a
//! deterministic grid over capacitance budgets, stage ablations and
//! inverter-vs-buffer drive so a single manifest cell populates a frontier
//! worth exploring.

use crate::job::Job;
use crate::runner::{CampaignResult, JobMetrics};
use contango_benchmarks::report::{format_ps, Table};
use std::fmt::Write as _;

/// One candidate point of the Pareto reduction: a (benchmark, tool) cell
/// and its three objectives, all to be minimized.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Benchmark the run was measured on.
    pub benchmark: String,
    /// Tool/variant label of the run.
    pub tool: String,
    /// Worst-case skew across the nominal evaluation, every corner and
    /// every Monte-Carlo sample ([`JobMetrics::worst_case_skew`]), ps.
    pub skew: f64,
    /// Capacitance utilization, % of the instance budget.
    pub cap_pct: f64,
    /// Total wirelength, µm.
    pub wirelength: f64,
}

impl ParetoPoint {
    /// The point a successful job contributes.
    pub fn from_metrics(metrics: &JobMetrics) -> ParetoPoint {
        ParetoPoint {
            benchmark: metrics.summary.benchmark.clone(),
            tool: metrics.summary.tool.clone(),
            skew: metrics.worst_case_skew(),
            cap_pct: metrics.summary.cap_pct,
            wirelength: metrics.summary.wirelength,
        }
    }

    /// Strict Pareto dominance: same benchmark, no objective worse, at
    /// least one strictly better. Points on different benchmarks never
    /// compare (their skews are not commensurable), so the campaign
    /// frontier is the union of per-benchmark frontiers. Ties (and NaN
    /// comparisons) dominate nothing, so identical points all survive.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        self.benchmark == other.benchmark
            && self.skew <= other.skew
            && self.cap_pct <= other.cap_pct
            && self.wirelength <= other.wirelength
            && (self.skew < other.skew
                || self.cap_pct < other.cap_pct
                || self.wirelength < other.wirelength)
    }
}

/// A computed Pareto frontier: the non-dominated points in canonical
/// `(benchmark, tool)` order, plus how many candidates were dominated.
#[derive(Debug, Clone, PartialEq)]
pub struct Frontier {
    /// The non-dominated points, sorted by `(benchmark, tool)`.
    pub points: Vec<ParetoPoint>,
    /// Number of candidate points dropped as dominated.
    pub dominated: usize,
}

impl Frontier {
    /// Reduces a point set to its Pareto frontier. The result is
    /// independent of the input order: a point survives iff no point of
    /// the whole set strictly dominates it, and survivors are sorted
    /// canonically.
    pub fn of(points: &[ParetoPoint]) -> Frontier {
        let mut frontier: Vec<ParetoPoint> = points
            .iter()
            .filter(|candidate| !points.iter().any(|other| other.dominates(candidate)))
            .cloned()
            .collect();
        frontier.sort_by(|a, b| (&a.benchmark, &a.tool).cmp(&(&b.benchmark, &b.tool)));
        Frontier {
            dominated: points.len() - frontier.len(),
            points: frontier,
        }
    }

    /// The frontier of a campaign's successful jobs. Failed jobs
    /// contribute no point (they appear in the failure table instead).
    pub fn of_result(result: &CampaignResult) -> Frontier {
        let points: Vec<ParetoPoint> = result
            .records
            .iter()
            .filter_map(|record| record.outcome.as_ref().ok())
            .map(ParetoPoint::from_metrics)
            .collect();
        Frontier::of(&points)
    }

    /// Renders the frontier as a table, one row per non-dominated point in
    /// canonical order.
    pub fn table(&self) -> Table {
        let mut table = Table::new(["benchmark", "tool", "worst skew (ps)", "cap (%)", "WL (um)"]);
        for p in &self.points {
            table.push_row(vec![
                p.benchmark.clone(),
                p.tool.clone(),
                format_ps(p.skew),
                format!("{:.2}", p.cap_pct),
                format!("{:.1}", p.wirelength),
            ]);
        }
        table
    }

    /// Renders the frontier as JSONL: one object per non-dominated point in
    /// canonical order, floats in shortest round-trip form, then one
    /// trailing summary object counting the reduction.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str("{\"benchmark\":\"");
            crate::jsonl::escape_into(&mut out, &p.benchmark);
            out.push_str("\",\"tool\":\"");
            crate::jsonl::escape_into(&mut out, &p.tool);
            let _ = writeln!(
                out,
                "\",\"worst_skew_ps\":{},\"cap_pct\":{},\"wirelength_um\":{}}}",
                p.skew, p.cap_pct, p.wirelength
            );
        }
        let _ = writeln!(
            out,
            "{{\"frontier\":{},\"dominated\":{}}}",
            self.points.len(),
            self.dominated
        );
        out
    }
}

/// The axes [`sweep_jobs`] fans a job out over. Every combination of the
/// three lists becomes one job, so `cap_scales × skip_sets ×
/// large_inverters` variants per base job.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxes {
    /// Scale factors applied to the instance's capacitance budget
    /// (`1.0` = the instance as declared).
    pub cap_scales: Vec<f64>,
    /// Stage-ablation sets: each entry is a list of stage acronyms to skip
    /// (empty = the full pipeline).
    pub skip_sets: Vec<Vec<String>>,
    /// Drive-topology variants for `use_large_inverters`.
    pub large_inverters: Vec<bool>,
}

impl Default for SweepAxes {
    /// A compact default grid: three capacitance budgets, the full pipeline
    /// against a bottom-level ablation, and both drive topologies —
    /// 3 × 2 × 2 = 12 variants per job.
    fn default() -> Self {
        SweepAxes {
            cap_scales: vec![1.0, 0.85, 0.7],
            skip_sets: vec![Vec::new(), vec!["BWSN".to_string()]],
            large_inverters: vec![false, true],
        }
    }
}

/// Expands `base` into one ordinary [`Job`] per grid point of `axes`, in a
/// deterministic nested-loop order (cap scale outermost, drive innermost).
/// Each variant gets a stable, self-describing tool label —
/// `tool[cap=0.85,skip=BWSN,large-inv]` — so the sweep lands in reports
/// and Pareto frontiers as ordinary (benchmark, tool) cells; the variant
/// identical to `base` keeps its plain label.
pub fn sweep_jobs(base: &Job, axes: &SweepAxes) -> Vec<Job> {
    let mut jobs = Vec::new();
    for &cap_scale in &axes.cap_scales {
        for skip in &axes.skip_sets {
            for &large in &axes.large_inverters {
                let mut job = base.clone();
                let mut parts = Vec::new();
                if cap_scale != 1.0 {
                    job.instance.cap_limit *= cap_scale;
                    parts.push(format!("cap={cap_scale}"));
                }
                if !skip.is_empty() {
                    for stage in skip {
                        if !job.skip.contains(stage) {
                            job.skip.push(stage.clone());
                        }
                    }
                    parts.push(format!("skip={}", skip.join("+")));
                }
                if large != base.config.use_large_inverters {
                    job.config.use_large_inverters = large;
                    parts.push(if large {
                        "large-inv".to_string()
                    } else {
                        "small-inv".to_string()
                    });
                }
                if !parts.is_empty() {
                    job.tool = format!("{}[{}]", base.tool, parts.join(","));
                }
                jobs.push(job);
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use contango_core::flow::FlowConfig;
    use contango_geom::Point;
    use contango_tech::Technology;

    fn point(benchmark: &str, tool: &str, skew: f64, cap: f64, wl: f64) -> ParetoPoint {
        ParetoPoint {
            benchmark: benchmark.to_string(),
            tool: tool.to_string(),
            skew,
            cap_pct: cap,
            wirelength: wl,
        }
    }

    #[test]
    fn dominance_is_strict() {
        let a = point("b", "x", 1.0, 10.0, 100.0);
        let better = point("b", "y", 0.5, 10.0, 100.0);
        let tied = point("b", "z", 1.0, 10.0, 100.0);
        let tradeoff = point("b", "w", 0.5, 20.0, 100.0);
        assert!(better.dominates(&a));
        assert!(!a.dominates(&better));
        assert!(!tied.dominates(&a) && !a.dominates(&tied));
        assert!(!tradeoff.dominates(&a) && !a.dominates(&tradeoff));
        // Different benchmarks never compare, however lopsided the metrics.
        let other_bench = point("c", "x", 0.1, 1.0, 1.0);
        assert!(!other_bench.dominates(&a));
    }

    #[test]
    fn frontier_is_order_independent_and_canonically_sorted() {
        let points = vec![
            point("b", "slow-fat", 5.0, 50.0, 500.0),
            point("b", "best", 1.0, 10.0, 100.0),
            point("b", "thin", 3.0, 5.0, 400.0),
            point("a", "only", 2.0, 2.0, 2.0),
        ];
        let frontier = Frontier::of(&points);
        assert_eq!(frontier.dominated, 1);
        let cells: Vec<(&str, &str)> = frontier
            .points
            .iter()
            .map(|p| (p.benchmark.as_str(), p.tool.as_str()))
            .collect();
        assert_eq!(cells, [("a", "only"), ("b", "best"), ("b", "thin")]);

        let mut reversed = points.clone();
        reversed.reverse();
        assert_eq!(Frontier::of(&reversed), frontier);
        assert_eq!(
            Frontier::of(&reversed).to_jsonl(),
            frontier.to_jsonl(),
            "frontier JSONL must not depend on submission order"
        );
        assert!(frontier
            .to_jsonl()
            .ends_with("{\"frontier\":3,\"dominated\":1}\n"));
    }

    #[test]
    fn every_dropped_point_is_dominated_by_a_frontier_point() {
        let points = vec![
            point("b", "t0", 4.0, 40.0, 40.0),
            point("b", "t1", 1.0, 10.0, 10.0),
            point("b", "t2", 2.0, 5.0, 30.0),
            point("b", "t3", 3.0, 30.0, 5.0),
        ];
        let frontier = Frontier::of(&points);
        for p in &points {
            let on_frontier = frontier.points.contains(p);
            let dominated = frontier.points.iter().any(|f| f.dominates(p));
            assert!(on_frontier != dominated, "{p:?}");
        }
    }

    #[test]
    fn sweep_expands_the_grid_with_stable_labels() {
        let mut b = contango_core::instance::ClockNetInstance::builder("sweep")
            .die(0.0, 0.0, 2000.0, 2000.0)
            .cap_limit(100_000.0);
        for i in 0..4 {
            b = b.sink(Point::new(300.0 + 200.0 * i as f64, 400.0), 10.0);
        }
        let instance = b.build().expect("valid");
        let base = Job::contango(&Technology::ispd09(), FlowConfig::fast(), &instance);
        let jobs = sweep_jobs(&base, &SweepAxes::default());
        assert_eq!(jobs.len(), 12);
        // The all-nominal grid point keeps the plain label; every other
        // label is unique and self-describing.
        assert_eq!(jobs[0].tool, "contango");
        let labels: Vec<&str> = jobs.iter().map(|j| j.tool.as_str()).collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), jobs.len());
        assert!(labels.contains(&"contango[cap=0.7,skip=BWSN,large-inv]"));
        // Axes actually land in the job description.
        let tight = jobs
            .iter()
            .find(|j| j.tool == "contango[cap=0.85]")
            .expect("cap variant");
        assert_eq!(tight.instance.cap_limit, 85_000.0);
        let ablated = jobs
            .iter()
            .find(|j| j.tool == "contango[skip=BWSN]")
            .expect("skip variant");
        assert_eq!(ablated.skip, vec!["BWSN".to_string()]);
        let inverted = jobs
            .iter()
            .find(|j| j.tool == "contango[large-inv]")
            .expect("drive variant");
        assert!(inverted.config.use_large_inverters);
        // Determinism: the same expansion twice is identical.
        assert_eq!(
            sweep_jobs(&base, &SweepAxes::default())
                .iter()
                .map(|j| j.tool.clone())
                .collect::<Vec<_>>(),
            labels
        );
    }
}
