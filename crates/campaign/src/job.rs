//! Campaign jobs: one whole flow run, described declaratively.
//!
//! A [`Job`] carries everything a worker needs to run one flow — instance,
//! technology, configuration and stage selection — as plain data, so jobs
//! can be built on one thread and executed on another; the worker builds
//! the [`Pipeline`] locally from the description.

use contango_baselines::BaselineKind;
use contango_core::flow::FlowConfig;
use contango_core::instance::ClockNetInstance;
use contango_core::pipeline::Pipeline;
use contango_tech::Technology;

/// One whole-flow run of a campaign.
#[derive(Debug, Clone)]
pub struct Job {
    /// Benchmark name reported for this job (defaults to the instance
    /// name).
    pub benchmark: String,
    /// Flow/tool label reported for this job (`"contango"`, a baseline
    /// label, or an ablation label).
    pub tool: String,
    /// Technology the flow runs under.
    pub tech: Technology,
    /// Flow configuration (rounds, model, topology, …).
    pub config: FlowConfig,
    /// The instance to synthesize.
    pub instance: ClockNetInstance,
    /// Run only these optimization stages (INITIAL always runs first), in
    /// the order listed; `None` keeps the configuration's stages.
    pub stages: Option<Vec<String>>,
    /// Stages to drop from the pipeline.
    pub skip: Vec<String>,
}

impl Job {
    /// A full Contango run of `instance` under `config`.
    pub fn contango(tech: &Technology, config: FlowConfig, instance: &ClockNetInstance) -> Self {
        Self {
            benchmark: instance.name.clone(),
            tool: "contango".to_string(),
            tech: tech.clone(),
            config,
            instance: instance.clone(),
            stages: None,
            skip: Vec::new(),
        }
    }

    /// A baseline stand-in run of `instance`: the baseline's trimmed
    /// configuration, labeled with [`BaselineKind::label`]. Equivalent to
    /// [`contango_baselines::run_baseline`] (the config shims and the
    /// baseline pipelines select the same passes with the same budgets).
    pub fn baseline(kind: BaselineKind, tech: &Technology, instance: &ClockNetInstance) -> Self {
        Self {
            tool: kind.label().to_string(),
            config: kind.config(),
            ..Self::contango(tech, FlowConfig::fast(), instance)
        }
    }

    /// Overrides the reported tool label (e.g. for ablation variants).
    #[must_use]
    pub fn with_tool(mut self, tool: impl Into<String>) -> Self {
        self.tool = tool.into();
        self
    }

    /// Overrides the reported benchmark name.
    #[must_use]
    pub fn with_benchmark(mut self, benchmark: impl Into<String>) -> Self {
        self.benchmark = benchmark.into();
        self
    }

    /// Restricts the run to the listed optimization stages (INITIAL always
    /// runs first); `None` keeps the configuration's stages.
    #[must_use]
    pub fn with_stages(mut self, stages: Option<Vec<String>>) -> Self {
        self.stages = stages;
        self
    }

    /// Drops the listed stages from the pipeline — an ablation job.
    #[must_use]
    pub fn with_skip(mut self, skip: Vec<String>) -> Self {
        self.skip = skip;
        self
    }

    /// The pipeline this job runs: the configuration's default pipeline,
    /// restricted to [`Job::stages`] in the order listed (INITIAL always
    /// first) and with every [`Job::skip`] stage removed — the same
    /// semantics as the CLI's `--stages`/`--skip` flags, shared through
    /// [`Pipeline::with_stage_selection`].
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::contango(&self.config).with_stage_selection(self.stages.as_deref(), &self.skip)
    }

    /// Scheduling cost estimate: sinks × passes (plus one for
    /// construction-dominated single-pass jobs). Only the relative order
    /// matters — the executor dispatches the costliest jobs first so a
    /// long job never lands last on an otherwise drained queue.
    pub fn cost(&self) -> u64 {
        (self.instance.sink_count() as u64 + 1) * (self.pipeline().len() as u64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contango_geom::Point;

    fn instance(sinks: usize) -> ClockNetInstance {
        let mut b = ClockNetInstance::builder("job-test")
            .die(0.0, 0.0, 2000.0, 2000.0)
            .cap_limit(300_000.0);
        for i in 0..sinks {
            b = b.sink(
                Point::new(200.0 + 150.0 * i as f64, 300.0 + 90.0 * i as f64),
                10.0,
            );
        }
        b.build().expect("valid")
    }

    #[test]
    fn stage_selection_mirrors_the_cli_semantics() {
        let tech = Technology::ispd09();
        let job = Job::contango(&tech, FlowConfig::fast(), &instance(4));
        assert_eq!(
            job.pipeline().acronyms(),
            ["INITIAL", "TBSZ", "TWSZ", "TWSN", "BWSN"]
        );
        let job = job
            .with_stages(Some(vec!["TWSN".to_string(), "TWSZ".to_string()]))
            .with_skip(vec!["TWSZ".to_string()]);
        assert_eq!(job.pipeline().acronyms(), ["INITIAL", "TWSN"]);
    }

    #[test]
    fn baseline_jobs_match_the_baseline_pipelines() {
        let tech = Technology::ispd09();
        let inst = instance(4);
        for kind in BaselineKind::all() {
            let job = Job::baseline(kind, &tech, &inst);
            assert_eq!(job.tool, kind.label());
            assert_eq!(job.pipeline().acronyms(), kind.pipeline().acronyms());
        }
    }

    #[test]
    fn cost_orders_bigger_work_first() {
        let tech = Technology::ispd09();
        let small = Job::baseline(BaselineKind::DmeNoTuning, &tech, &instance(4));
        let large = Job::contango(&tech, FlowConfig::fast(), &instance(9));
        assert!(large.cost() > small.cost());
    }
}
