//! Campaign jobs: one whole flow run, described declaratively.
//!
//! A [`Job`] carries everything a worker needs to run one flow — instance,
//! technology, configuration and stage selection — as plain data, so jobs
//! can be built on one thread and executed on another; the worker builds
//! the [`Pipeline`] locally from the description.

use contango_baselines::BaselineKind;
use contango_core::flow::FlowConfig;
use contango_core::instance::ClockNetInstance;
use contango_core::pipeline::Pipeline;
use contango_sim::VariationModel;
use contango_tech::Technology;

/// A discrete process/voltage corner a finished tree is re-evaluated at.
///
/// Each corner is a fixed, deterministic transform of the synthesized
/// network: wire and device resistances and capacitances scale by the
/// process factor, the supply corners by the voltage factor (through
/// `contango_sim`'s `scaled_netlist`/`scaled_technology`). Corners are
/// analysis axes — the synthesis itself always runs at nominal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CornerKind {
    /// The nominal corner: the unscaled network (factors all 1.0).
    Nominal,
    /// Slow process, low voltage: R and C +8%, Vdd −5%.
    Slow,
    /// Fast process, high voltage: R and C −8%, Vdd +5%.
    Fast,
    /// Nominal process at an aggressively lowered supply: Vdd −15%.
    LowVdd,
}

impl CornerKind {
    /// Every corner, in canonical order.
    pub fn all() -> [CornerKind; 4] {
        [
            CornerKind::Nominal,
            CornerKind::Slow,
            CornerKind::Fast,
            CornerKind::LowVdd,
        ]
    }

    /// The stable label used in manifests, CLI flags, tables and JSONL.
    pub fn label(self) -> &'static str {
        match self {
            CornerKind::Nominal => "nominal",
            CornerKind::Slow => "slow",
            CornerKind::Fast => "fast",
            CornerKind::LowVdd => "low-vdd",
        }
    }

    /// Parses a [`Self::label`] back into a corner.
    pub fn from_label(label: &str) -> Option<CornerKind> {
        CornerKind::all().into_iter().find(|c| c.label() == label)
    }

    /// The `(resistance, capacitance, vdd)` scale factors of the corner.
    pub fn factors(self) -> (f64, f64, f64) {
        match self {
            CornerKind::Nominal => (1.0, 1.0, 1.0),
            CornerKind::Slow => (1.08, 1.08, 0.95),
            CornerKind::Fast => (0.92, 0.92, 1.05),
            CornerKind::LowVdd => (1.0, 1.0, 0.85),
        }
    }
}

/// The Monte-Carlo variation axis of a job: which [`VariationModel`] to
/// sample, how many samples, and the seed — everything the worker needs to
/// reproduce the exact sample population anywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSpec {
    /// The 1-sigma variation magnitudes to sample.
    pub model: VariationModel,
    /// Number of Monte-Carlo samples per job (must be nonzero).
    pub samples: usize,
    /// Seed of the deterministic sampler.
    pub seed: u64,
}

/// One whole-flow run of a campaign.
#[derive(Debug, Clone)]
pub struct Job {
    /// Benchmark name reported for this job (defaults to the instance
    /// name).
    pub benchmark: String,
    /// Flow/tool label reported for this job (`"contango"`, a baseline
    /// label, or an ablation label).
    pub tool: String,
    /// Technology the flow runs under.
    pub tech: Technology,
    /// Flow configuration (rounds, model, topology, …).
    pub config: FlowConfig,
    /// The instance to synthesize.
    pub instance: ClockNetInstance,
    /// Run only these optimization stages (INITIAL always runs first), in
    /// the order listed; `None` keeps the configuration's stages.
    pub stages: Option<Vec<String>>,
    /// Stages to drop from the pipeline.
    pub skip: Vec<String>,
    /// Process/voltage corners the finished tree is re-evaluated at, in
    /// the order listed. Empty = nominal-only (no corner columns appear in
    /// any report, keeping corner-less outputs byte-identical to older
    /// runs).
    pub corners: Vec<CornerKind>,
    /// Monte-Carlo variation sampling of the finished tree, if any.
    pub variation: Option<VariationSpec>,
}

impl Job {
    /// A full Contango run of `instance` under `config`.
    pub fn contango(tech: &Technology, config: FlowConfig, instance: &ClockNetInstance) -> Self {
        Self {
            benchmark: instance.name.clone(),
            tool: "contango".to_string(),
            tech: tech.clone(),
            config,
            instance: instance.clone(),
            stages: None,
            skip: Vec::new(),
            corners: Vec::new(),
            variation: None,
        }
    }

    /// A baseline stand-in run of `instance`: the baseline's trimmed
    /// configuration, labeled with [`BaselineKind::label`]. Equivalent to
    /// [`contango_baselines::run_baseline`] (the config shims and the
    /// baseline pipelines select the same passes with the same budgets).
    pub fn baseline(kind: BaselineKind, tech: &Technology, instance: &ClockNetInstance) -> Self {
        Self {
            tool: kind.label().to_string(),
            config: kind.config(),
            ..Self::contango(tech, FlowConfig::fast(), instance)
        }
    }

    /// Overrides the reported tool label (e.g. for ablation variants).
    #[must_use]
    pub fn with_tool(mut self, tool: impl Into<String>) -> Self {
        self.tool = tool.into();
        self
    }

    /// Overrides the reported benchmark name.
    #[must_use]
    pub fn with_benchmark(mut self, benchmark: impl Into<String>) -> Self {
        self.benchmark = benchmark.into();
        self
    }

    /// Restricts the run to the listed optimization stages (INITIAL always
    /// runs first); `None` keeps the configuration's stages.
    #[must_use]
    pub fn with_stages(mut self, stages: Option<Vec<String>>) -> Self {
        self.stages = stages;
        self
    }

    /// Drops the listed stages from the pipeline — an ablation job.
    #[must_use]
    pub fn with_skip(mut self, skip: Vec<String>) -> Self {
        self.skip = skip;
        self
    }

    /// Re-evaluates the finished tree at the listed corners (in order).
    #[must_use]
    pub fn with_corners(mut self, corners: Vec<CornerKind>) -> Self {
        self.corners = corners;
        self
    }

    /// Adds Monte-Carlo variation sampling of the finished tree.
    #[must_use]
    pub fn with_variation(mut self, variation: Option<VariationSpec>) -> Self {
        self.variation = variation;
        self
    }

    /// The pipeline this job runs: the configuration's default pipeline,
    /// restricted to [`Job::stages`] in the order listed (INITIAL always
    /// first) and with every [`Job::skip`] stage removed — the same
    /// semantics as the CLI's `--stages`/`--skip` flags, shared through
    /// [`Pipeline::with_stage_selection`].
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::contango(&self.config).with_stage_selection(self.stages.as_deref(), &self.skip)
    }

    /// Scheduling cost estimate: sinks × passes (plus one for
    /// construction-dominated single-pass jobs), scaled up by the number of
    /// post-flow evaluations (corners and Monte-Carlo samples). Only the
    /// relative order matters — the executor dispatches the costliest jobs
    /// first so a long job never lands last on an otherwise drained queue.
    pub fn cost(&self) -> u64 {
        let flow = (self.instance.sink_count() as u64 + 1) * (self.pipeline().len() as u64 + 1);
        let extra_evals =
            self.corners.len() as u64 + self.variation.map_or(0, |v| v.samples as u64);
        flow + flow * extra_evals / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contango_geom::Point;

    fn instance(sinks: usize) -> ClockNetInstance {
        let mut b = ClockNetInstance::builder("job-test")
            .die(0.0, 0.0, 2000.0, 2000.0)
            .cap_limit(300_000.0);
        for i in 0..sinks {
            b = b.sink(
                Point::new(200.0 + 150.0 * i as f64, 300.0 + 90.0 * i as f64),
                10.0,
            );
        }
        b.build().expect("valid")
    }

    #[test]
    fn stage_selection_mirrors_the_cli_semantics() {
        let tech = Technology::ispd09();
        let job = Job::contango(&tech, FlowConfig::fast(), &instance(4));
        assert_eq!(
            job.pipeline().acronyms(),
            ["INITIAL", "TBSZ", "TWSZ", "TWSN", "BWSN"]
        );
        let job = job
            .with_stages(Some(vec!["TWSN".to_string(), "TWSZ".to_string()]))
            .with_skip(vec!["TWSZ".to_string()]);
        assert_eq!(job.pipeline().acronyms(), ["INITIAL", "TWSN"]);
    }

    #[test]
    fn baseline_jobs_match_the_baseline_pipelines() {
        let tech = Technology::ispd09();
        let inst = instance(4);
        for kind in BaselineKind::all() {
            let job = Job::baseline(kind, &tech, &inst);
            assert_eq!(job.tool, kind.label());
            assert_eq!(job.pipeline().acronyms(), kind.pipeline().acronyms());
        }
    }

    #[test]
    fn cost_orders_bigger_work_first() {
        let tech = Technology::ispd09();
        let small = Job::baseline(BaselineKind::DmeNoTuning, &tech, &instance(4));
        let large = Job::contango(&tech, FlowConfig::fast(), &instance(9));
        assert!(large.cost() > small.cost());
    }

    #[test]
    fn corner_labels_round_trip() {
        for corner in CornerKind::all() {
            assert_eq!(CornerKind::from_label(corner.label()), Some(corner));
        }
        assert_eq!(CornerKind::from_label("typical"), None);
        let (r, c, v) = CornerKind::Nominal.factors();
        assert_eq!((r, c, v), (1.0, 1.0, 1.0));
    }

    #[test]
    fn corners_and_samples_raise_the_scheduling_cost() {
        let tech = Technology::ispd09();
        let base = Job::contango(&tech, FlowConfig::fast(), &instance(6));
        let cornered = base.clone().with_corners(CornerKind::all().to_vec());
        let sampled = base.clone().with_variation(Some(VariationSpec {
            model: VariationModel::typical_45nm(),
            samples: 64,
            seed: 7,
        }));
        assert!(cornered.cost() > base.cost());
        assert!(sampled.cost() > cornered.cost());
    }
}
