//! Unit conventions shared by the whole workspace.
//!
//! | Quantity     | Unit          |
//! |--------------|---------------|
//! | length       | micrometre (µm) |
//! | resistance   | ohm (Ω)       |
//! | capacitance  | femtofarad (fF) |
//! | time         | picosecond (ps) |
//! | voltage      | volt (V)      |
//! | power        | microwatt (µW) |
//!
//! The product of a resistance in ohms and a capacitance in femtofarads is
//! `1 Ω·fF = 10⁻¹⁵ s = 0.001 ps`; [`RC_TO_PS`] converts such products into
//! picoseconds so that delay formulas stay dimensionally explicit.

/// Conversion factor from `Ω × fF` to picoseconds.
pub const RC_TO_PS: f64 = 1e-3;

/// Converts an RC product (`Ω × fF`) to picoseconds.
///
/// ```
/// use contango_tech::units::rc_ps;
/// // 100 Ω driving 500 fF: time constant 50 ps.
/// assert_eq!(rc_ps(100.0, 500.0), 50.0);
/// ```
#[inline]
pub fn rc_ps(resistance_ohm: f64, capacitance_ff: f64) -> f64 {
    resistance_ohm * capacitance_ff * RC_TO_PS
}

/// Slew-rate factor relating an RC time constant to a 10%–90% transition
/// time of a single-pole response: `t_slew = ln(9) · RC ≈ 2.197 · RC`.
pub const SLEW_LN9: f64 = 2.197224577336219;

/// Delay factor relating an RC time constant to the 50% crossing of a
/// single-pole response: `t_50 = ln(2) · RC ≈ 0.693 · RC`.
pub const DELAY_LN2: f64 = std::f64::consts::LN_2;

/// Dynamic switching power in microwatts for a capacitance switched at a
/// given frequency and supply: `P = C · V² · f`.
///
/// `cap_ff` is in femtofarads, `vdd` in volts, `freq_ghz` in gigahertz; the
/// result is in microwatts (`fF · V² · GHz = µW`).
///
/// ```
/// use contango_tech::units::switching_power_uw;
/// // 1 pF switched at 1 GHz under 1 V dissipates 1 µW.
/// assert!((switching_power_uw(1000.0, 1.0, 1.0) - 1.0).abs() < 1e-12);
/// ```
#[inline]
pub fn switching_power_uw(cap_ff: f64, vdd: f64, freq_ghz: f64) -> f64 {
    cap_ff * vdd * vdd * freq_ghz * 1e-3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_product_converts_to_picoseconds() {
        assert_eq!(rc_ps(1.0, 1.0), 0.001);
        assert_eq!(rc_ps(61.2, 35.0), 61.2 * 35.0 * 1e-3);
    }

    #[test]
    fn slew_and_delay_factors_are_consistent() {
        // ln(9) = 2 ln(3) and ln(2) are the analytic values.
        assert!((SLEW_LN9 - 9.0_f64.ln()).abs() < 1e-12);
        assert!((DELAY_LN2 - 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn switching_power_scales_quadratically_with_vdd() {
        let p1 = switching_power_uw(100.0, 1.0, 1.0);
        let p2 = switching_power_uw(100.0, 2.0, 1.0);
        assert!((p2 / p1 - 4.0).abs() < 1e-12);
    }
}
