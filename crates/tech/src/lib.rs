//! Technology description for SoC clock-network synthesis.
//!
//! This crate models the 45 nm-class technology data that the Contango flow
//! consumes:
//!
//! * [`WireCode`] / [`WireLibrary`] — per-unit-length resistance and
//!   capacitance for each available wire width.
//! * [`InverterKind`] / [`InverterLibrary`] — clock inverters characterized
//!   by input capacitance, output (parasitic) capacitance and output
//!   resistance, as in Table I of the paper.
//! * [`CompositeBuffer`] and [`composite::enumerate_composites`] — parallel
//!   compositions of library inverters and the dynamic-programming selection
//!   of non-dominated configurations (paper, Section IV-B).
//! * [`Technology`] — the bundle of libraries, slew/capacitance limits and
//!   supply corners, including the derating model that makes delays
//!   supply-voltage dependent (needed by the Clock Latency Range objective).
//!
//! # Units
//!
//! All quantities use the unit system summarized in [`units`]: micrometres,
//! femtofarads, ohms, picoseconds and volts. With these units,
//! `R(Ω) × C(fF) = 0.001 ps`, which is captured by [`units::RC_TO_PS`].
//!
//! # Example
//!
//! ```
//! use contango_tech::Technology;
//!
//! let tech = Technology::ispd09();
//! // Eight parallel small inverters beat one large inverter on every axis
//! // (Table I of the paper).
//! let small8 = tech.composite(tech.small_inverter(), 8);
//! let large1 = tech.composite(tech.large_inverter(), 1);
//! assert!(small8.output_res() < large1.output_res());
//! assert!(small8.input_cap() < large1.input_cap());
//! assert!(small8.output_cap() < large1.output_cap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod composite;
mod inverter;
mod technology;
pub mod units;
mod wire;

pub use composite::CompositeBuffer;
pub use inverter::{InverterKind, InverterLibrary};
pub use technology::{SupplyCorner, Technology};
pub use wire::{WireCode, WireLibrary, WireWidth};
