//! The technology bundle consumed by the synthesis flow.

use crate::composite::CompositeBuffer;
use crate::units;
use crate::{InverterKind, InverterLibrary, WireCode, WireLibrary, WireWidth};
use serde::Serialize;

/// A supply-voltage corner at which the clock network is evaluated.
///
/// The ISPD'09 contest evaluates sink latencies at 1.2 V and 1.0 V; the
/// Clock Latency Range (CLR) objective is the difference between the largest
/// latency at the low corner and the smallest latency at the high corner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SupplyCorner {
    /// Corner name, e.g. `"1.2V"`.
    pub name: &'static str,
    /// Supply voltage in volts.
    pub vdd: f64,
}

/// Complete technology description: wire and inverter libraries, slew limit
/// and supply corners, plus the voltage-derating model for delays.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Technology {
    wires: WireLibrary,
    inverters: InverterLibrary,
    /// Maximum allowed 10%–90% slew anywhere in the network, in ps.
    pub slew_limit: f64,
    /// Nominal supply corner (inverters are characterized here).
    pub nominal_corner: SupplyCorner,
    /// Reduced-supply corner used for the CLR objective.
    pub low_corner: SupplyCorner,
    /// Transistor threshold voltage used by the alpha-power derating model.
    pub threshold_voltage: f64,
    /// Velocity-saturation exponent of the alpha-power derating model.
    pub alpha: f64,
    /// Clock frequency in GHz used for power reporting.
    pub clock_freq_ghz: f64,
}

impl Technology {
    /// Builds a technology from its parts.
    pub fn new(
        wires: WireLibrary,
        inverters: InverterLibrary,
        slew_limit: f64,
        nominal_corner: SupplyCorner,
        low_corner: SupplyCorner,
    ) -> Self {
        assert!(slew_limit > 0.0, "slew limit must be positive");
        assert!(
            low_corner.vdd <= nominal_corner.vdd,
            "low corner must not exceed the nominal supply"
        );
        Self {
            wires,
            inverters,
            slew_limit,
            nominal_corner,
            low_corner,
            threshold_voltage: 0.35,
            alpha: 1.3,
            clock_freq_ghz: 1.0,
        }
    }

    /// The 45 nm ISPD'09-contest-style technology used throughout the paper:
    /// two wire widths, a small and a large clock inverter with the Table-I
    /// electrical values, a 100 ps slew limit and 1.2 V / 1.0 V corners.
    pub fn ispd09() -> Self {
        let wires = WireLibrary::new(
            WireCode::new(WireWidth::Narrow, 0.16, 0.17),
            WireCode::new(WireWidth::Wide, 0.08, 0.21),
        );
        let inverters = InverterLibrary::new(vec![
            InverterKind {
                id: 0,
                name: "INV_SMALL",
                input_cap: 4.2,
                output_cap: 6.1,
                output_res: 440.0,
                intrinsic_delay: 6.0,
            },
            InverterKind {
                id: 1,
                name: "INV_LARGE",
                input_cap: 35.0,
                output_cap: 80.0,
                output_res: 61.2,
                intrinsic_delay: 9.0,
            },
        ]);
        Technology::new(
            wires,
            inverters,
            100.0,
            SupplyCorner {
                name: "1.2V",
                vdd: 1.2,
            },
            SupplyCorner {
                name: "1.0V",
                vdd: 1.0,
            },
        )
    }

    /// The TI-style 45 nm technology used for the scalability study
    /// (Section V of the paper): same electrical structure as
    /// [`Technology::ispd09`], but flows built on it drive the tree with
    /// groups of large inverters for runtime, as in the paper.
    pub fn ti45() -> Self {
        Technology::ispd09()
    }

    /// The wire library.
    pub fn wires(&self) -> &WireLibrary {
        &self.wires
    }

    /// The inverter library.
    pub fn inverters(&self) -> &InverterLibrary {
        &self.inverters
    }

    /// The wire code for a width class.
    pub fn wire(&self, width: WireWidth) -> &WireCode {
        self.wires.code(width)
    }

    /// The smallest (weakest) inverter in the library.
    pub fn small_inverter(&self) -> &InverterKind {
        self.inverters.smallest()
    }

    /// The strongest single inverter in the library.
    pub fn large_inverter(&self) -> &InverterKind {
        self.inverters.strongest()
    }

    /// Builds a composite buffer of `parallel` copies of `base`.
    pub fn composite(&self, base: &InverterKind, parallel: u32) -> CompositeBuffer {
        CompositeBuffer::new(*base, parallel)
    }

    /// Delay/resistance derating factor at supply `vdd`, relative to the
    /// nominal corner (factor 1.0 at nominal, above 1.0 for lower supplies).
    ///
    /// The model is the alpha-power law: drive current scales as
    /// `(VDD − Vt)^α`, and the delay of a stage scales as
    /// `VDD / (VDD − Vt)^α`.
    pub fn derate(&self, vdd: f64) -> f64 {
        assert!(
            vdd > self.threshold_voltage,
            "supply voltage must exceed the threshold voltage"
        );
        let nom = self.nominal_corner.vdd;
        let num = vdd / (vdd - self.threshold_voltage).powf(self.alpha);
        let den = nom / (nom - self.threshold_voltage).powf(self.alpha);
        num / den
    }

    /// Maximum load capacitance (fF) that a driver with output resistance
    /// `output_res` can drive without violating the slew limit, assuming a
    /// single-pole output transition (`t_slew ≈ ln 9 · R · C`).
    ///
    /// This is the *slew-free capacitance* used when deciding whether a
    /// subtree crossing an obstacle needs a detour (paper, Section IV-A,
    /// Step 2), with the low-voltage corner's derating applied for safety.
    pub fn slew_free_cap(&self, output_res: f64) -> f64 {
        let worst_res = output_res * self.derate(self.low_corner.vdd);
        self.slew_limit / (units::SLEW_LN9 * worst_res * units::RC_TO_PS)
    }

    /// Dynamic power in µW of switching `cap_ff` femtofarads at the nominal
    /// supply and the technology's clock frequency.
    pub fn switching_power_uw(&self, cap_ff: f64) -> f64 {
        units::switching_power_uw(cap_ff, self.nominal_corner.vdd, self.clock_freq_ghz)
    }

    /// Both evaluation corners, nominal first.
    pub fn corners(&self) -> [SupplyCorner; 2] {
        [self.nominal_corner, self.low_corner]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ispd09_matches_table1_values() {
        let tech = Technology::ispd09();
        let small = tech.small_inverter();
        let large = tech.large_inverter();
        assert_eq!(small.input_cap, 4.2);
        assert_eq!(small.output_cap, 6.1);
        assert_eq!(small.output_res, 440.0);
        assert_eq!(large.input_cap, 35.0);
        assert_eq!(large.output_cap, 80.0);
        assert_eq!(large.output_res, 61.2);
        assert_eq!(tech.slew_limit, 100.0);
    }

    #[test]
    fn derating_is_one_at_nominal_and_larger_at_low_vdd() {
        let tech = Technology::ispd09();
        assert!((tech.derate(1.2) - 1.0).abs() < 1e-12);
        let low = tech.derate(1.0);
        assert!(low > 1.05 && low < 1.5, "low-corner derate = {low}");
    }

    #[test]
    fn derating_is_monotonic_in_vdd() {
        let tech = Technology::ispd09();
        let mut prev = tech.derate(0.8);
        for v in [0.9, 1.0, 1.1, 1.2] {
            let d = tech.derate(v);
            assert!(d < prev, "derate should decrease as VDD rises");
            prev = d;
        }
    }

    #[test]
    #[should_panic(expected = "exceed the threshold voltage")]
    fn derating_below_threshold_panics() {
        let _ = Technology::ispd09().derate(0.2);
    }

    #[test]
    fn slew_free_cap_is_larger_for_stronger_drivers() {
        let tech = Technology::ispd09();
        let weak = tech.slew_free_cap(440.0);
        let strong = tech.slew_free_cap(55.0);
        assert!(strong > weak);
        // A 55 Ω driver under a 100 ps slew limit can drive on the order of
        // several hundred fF.
        assert!(strong > 300.0 && strong < 2000.0, "strong = {strong}");
    }

    #[test]
    fn corners_report_nominal_first() {
        let tech = Technology::ispd09();
        let [nom, low] = tech.corners();
        assert_eq!(nom.vdd, 1.2);
        assert_eq!(low.vdd, 1.0);
    }

    #[test]
    fn switching_power_scales_with_cap() {
        let tech = Technology::ispd09();
        let p1 = tech.switching_power_uw(1000.0);
        let p2 = tech.switching_power_uw(2000.0);
        assert!((p2 / p1 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "slew limit must be positive")]
    fn zero_slew_limit_rejected() {
        let t = Technology::ispd09();
        let _ = Technology::new(
            t.wires().clone(),
            t.inverters().clone(),
            0.0,
            t.nominal_corner,
            t.low_corner,
        );
    }
}
