//! Wire codes: per-unit-length parasitics for each available wire width.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Logical wire width class.
///
/// The ISPD'09 contest (and hence Contango) uses exactly two wire sizes; a
/// *narrow* wire has higher resistance and lower capacitance than a *wide*
/// wire of equal length. Wire sizing toggles an edge between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WireWidth {
    /// The narrower (higher-resistance, lower-capacitance) wire.
    Narrow,
    /// The wider (lower-resistance, higher-capacitance) wire.
    Wide,
}

impl WireWidth {
    /// The other width class.
    pub fn toggled(self) -> WireWidth {
        match self {
            WireWidth::Narrow => WireWidth::Wide,
            WireWidth::Wide => WireWidth::Narrow,
        }
    }
}

impl fmt::Display for WireWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireWidth::Narrow => write!(f, "narrow"),
            WireWidth::Wide => write!(f, "wide"),
        }
    }
}

/// Per-unit-length electrical parameters of one wire width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireCode {
    /// Width class this code describes.
    pub width: WireWidth,
    /// Resistance per micrometre, in Ω/µm.
    pub unit_res: f64,
    /// Capacitance per micrometre, in fF/µm.
    pub unit_cap: f64,
}

impl WireCode {
    /// Creates a wire code.
    pub fn new(width: WireWidth, unit_res: f64, unit_cap: f64) -> Self {
        Self {
            width,
            unit_res,
            unit_cap,
        }
    }

    /// Total resistance of a wire of `length_um` micrometres, in Ω.
    #[inline]
    pub fn resistance(&self, length_um: f64) -> f64 {
        self.unit_res * length_um
    }

    /// Total capacitance of a wire of `length_um` micrometres, in fF.
    #[inline]
    pub fn capacitance(&self, length_um: f64) -> f64 {
        self.unit_cap * length_um
    }
}

/// The set of wire codes available in a technology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireLibrary {
    narrow: WireCode,
    wide: WireCode,
}

impl WireLibrary {
    /// Creates a library from the narrow and wide wire codes.
    ///
    /// # Panics
    ///
    /// Panics if the codes are tagged with the wrong width class or if the
    /// wide wire is not at least as conductive as the narrow wire.
    pub fn new(narrow: WireCode, wide: WireCode) -> Self {
        assert_eq!(narrow.width, WireWidth::Narrow, "narrow code mis-tagged");
        assert_eq!(wide.width, WireWidth::Wide, "wide code mis-tagged");
        assert!(
            wide.unit_res <= narrow.unit_res,
            "wide wires must not be more resistive than narrow wires"
        );
        Self { narrow, wide }
    }

    /// The wire code for a width class.
    pub fn code(&self, width: WireWidth) -> &WireCode {
        match width {
            WireWidth::Narrow => &self.narrow,
            WireWidth::Wide => &self.wide,
        }
    }

    /// The narrow wire code.
    pub fn narrow(&self) -> &WireCode {
        &self.narrow
    }

    /// The wide wire code.
    pub fn wide(&self) -> &WireCode {
        &self.wide
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> WireLibrary {
        WireLibrary::new(
            WireCode::new(WireWidth::Narrow, 0.2, 0.16),
            WireCode::new(WireWidth::Wide, 0.1, 0.20),
        )
    }

    #[test]
    fn resistance_and_capacitance_scale_linearly() {
        let lib = lib();
        let wide = lib.wide();
        assert_eq!(wide.resistance(100.0), 10.0);
        assert_eq!(wide.capacitance(100.0), 20.0);
    }

    #[test]
    fn toggled_width_flips() {
        assert_eq!(WireWidth::Narrow.toggled(), WireWidth::Wide);
        assert_eq!(WireWidth::Wide.toggled(), WireWidth::Narrow);
    }

    #[test]
    fn code_lookup_matches_width() {
        let lib = lib();
        assert_eq!(lib.code(WireWidth::Narrow).width, WireWidth::Narrow);
        assert_eq!(lib.code(WireWidth::Wide).width, WireWidth::Wide);
    }

    #[test]
    #[should_panic(expected = "wide wires must not be more resistive")]
    fn inconsistent_library_is_rejected() {
        let _ = WireLibrary::new(
            WireCode::new(WireWidth::Narrow, 0.1, 0.16),
            WireCode::new(WireWidth::Wide, 0.2, 0.20),
        );
    }

    #[test]
    fn display_of_widths() {
        assert_eq!(WireWidth::Narrow.to_string(), "narrow");
        assert_eq!(WireWidth::Wide.to_string(), "wide");
    }
}
