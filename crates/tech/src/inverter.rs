//! Clock inverter characterization.

use serde::Serialize;

/// One inverter type from the technology library.
///
/// The characterization follows Table I of the paper: an inverter is
/// described by its input pin capacitance, its output (parasitic)
/// capacitance and its effective output resistance, plus a small intrinsic
/// delay. Delay and output slew of a stage are then computed by the
/// simulation crate from `output_res` driving the downstream RC tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct InverterKind {
    /// Index of this inverter within its [`InverterLibrary`].
    pub id: usize,
    /// Human-readable name, e.g. `"INV_X1_LARGE"`.
    pub name: &'static str,
    /// Input pin capacitance in fF.
    pub input_cap: f64,
    /// Output (drain/parasitic) capacitance in fF.
    pub output_cap: f64,
    /// Effective output resistance in Ω at the nominal supply.
    pub output_res: f64,
    /// Intrinsic (unloaded) delay in ps at the nominal supply.
    pub intrinsic_delay: f64,
}

impl InverterKind {
    /// Ratio of drive strength relative to another inverter
    /// (`other.output_res / self.output_res`); values above 1 mean `self`
    /// is the stronger driver.
    pub fn strength_vs(&self, other: &InverterKind) -> f64 {
        other.output_res / self.output_res
    }
}

/// The inverters available in a technology.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InverterLibrary {
    kinds: Vec<InverterKind>,
}

impl InverterLibrary {
    /// Creates a library from inverter kinds.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty or if the declared `id`s do not match the
    /// positions in the vector.
    pub fn new(kinds: Vec<InverterKind>) -> Self {
        assert!(!kinds.is_empty(), "inverter library must not be empty");
        for (i, k) in kinds.iter().enumerate() {
            assert_eq!(k.id, i, "inverter id must equal its library position");
        }
        Self { kinds }
    }

    /// All inverter kinds.
    pub fn kinds(&self) -> &[InverterKind] {
        &self.kinds
    }

    /// Number of inverter kinds.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Returns `true` if the library has no inverters (never true for a
    /// library built through [`InverterLibrary::new`]).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The inverter with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn kind(&self, id: usize) -> &InverterKind {
        &self.kinds[id]
    }

    /// The inverter with the smallest input capacitance.
    pub fn smallest(&self) -> &InverterKind {
        self.kinds
            .iter()
            .min_by(|a, b| {
                a.input_cap
                    .partial_cmp(&b.input_cap)
                    .expect("finite capacitances")
            })
            .expect("non-empty library")
    }

    /// The inverter with the lowest output resistance (strongest driver).
    pub fn strongest(&self) -> &InverterKind {
        self.kinds
            .iter()
            .min_by(|a, b| {
                a.output_res
                    .partial_cmp(&b.output_res)
                    .expect("finite resistances")
            })
            .expect("non-empty library")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> InverterLibrary {
        InverterLibrary::new(vec![
            InverterKind {
                id: 0,
                name: "INV_SMALL",
                input_cap: 4.2,
                output_cap: 6.1,
                output_res: 440.0,
                intrinsic_delay: 5.0,
            },
            InverterKind {
                id: 1,
                name: "INV_LARGE",
                input_cap: 35.0,
                output_cap: 80.0,
                output_res: 61.2,
                intrinsic_delay: 8.0,
            },
        ])
    }

    #[test]
    fn smallest_and_strongest_lookup() {
        let lib = lib();
        assert_eq!(lib.smallest().name, "INV_SMALL");
        assert_eq!(lib.strongest().name, "INV_LARGE");
        assert_eq!(lib.len(), 2);
        assert!(!lib.is_empty());
    }

    #[test]
    fn strength_ratio() {
        let lib = lib();
        let s = lib.kind(0);
        let l = lib.kind(1);
        assert!(l.strength_vs(s) > 1.0);
        assert!(s.strength_vs(l) < 1.0);
    }

    #[test]
    #[should_panic(expected = "inverter id must equal its library position")]
    fn mismatched_ids_rejected() {
        let _ = InverterLibrary::new(vec![InverterKind {
            id: 3,
            name: "BAD",
            input_cap: 1.0,
            output_cap: 1.0,
            output_res: 1.0,
            intrinsic_delay: 1.0,
        }]);
    }
}
