//! Composite (parallel) inverter analysis.
//!
//! Most technology libraries support dedicated clock inverters; Contango
//! additionally considers *parallel compositions* of library inverters
//! (paper, Section IV-B and Table I). Connecting `n` identical inverters in
//! parallel multiplies input and output capacitance by `n` and divides the
//! output resistance by `n`. Eight parallel small inverters dominate one
//! large inverter on every axis in the ISPD'09 library, which is why
//! Contango drives its trees with batches of small inverters.
//!
//! [`enumerate_composites`] generates candidate configurations up to a
//! parallelism bound and prunes dominated ones via the classic
//! dynamic-programming / Pareto-front sweep.

use crate::{InverterKind, InverterLibrary};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parallel composition of `parallel` copies of one library inverter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CompositeBuffer {
    /// The underlying library inverter.
    base: InverterKind,
    /// Number of parallel copies (≥ 1).
    parallel: u32,
}

impl CompositeBuffer {
    /// Creates a composite of `parallel` copies of `base`.
    ///
    /// # Panics
    ///
    /// Panics if `parallel` is zero.
    pub fn new(base: InverterKind, parallel: u32) -> Self {
        assert!(
            parallel >= 1,
            "a composite buffer needs at least one inverter"
        );
        Self { base, parallel }
    }

    /// The underlying library inverter.
    pub fn base(&self) -> &InverterKind {
        &self.base
    }

    /// Number of parallel copies.
    pub fn parallel(&self) -> u32 {
        self.parallel
    }

    /// Total input capacitance in fF.
    pub fn input_cap(&self) -> f64 {
        self.base.input_cap * f64::from(self.parallel)
    }

    /// Total output (parasitic) capacitance in fF.
    pub fn output_cap(&self) -> f64 {
        self.base.output_cap * f64::from(self.parallel)
    }

    /// Effective output resistance in Ω at the nominal supply.
    pub fn output_res(&self) -> f64 {
        self.base.output_res / f64::from(self.parallel)
    }

    /// Intrinsic (unloaded) delay in ps; parallel composition does not
    /// change the intrinsic delay of the stage.
    pub fn intrinsic_delay(&self) -> f64 {
        self.base.intrinsic_delay
    }

    /// Capacitance cost of instantiating this composite once (input plus
    /// output parasitics), used for power accounting.
    pub fn total_cap(&self) -> f64 {
        self.input_cap() + self.output_cap()
    }

    /// Returns a composite with the same base and `factor`-times the
    /// parallelism (used by iterative buffer sizing).
    pub fn scaled(&self, factor: u32) -> CompositeBuffer {
        CompositeBuffer::new(self.base, self.parallel.saturating_mul(factor).max(1))
    }

    /// Returns `true` when `self` dominates `other`: no worse on input
    /// capacitance, output capacitance and output resistance, and strictly
    /// better on at least one of them.
    pub fn dominates(&self, other: &CompositeBuffer) -> bool {
        let eps = 1e-12;
        let no_worse = self.input_cap() <= other.input_cap() + eps
            && self.output_cap() <= other.output_cap() + eps
            && self.output_res() <= other.output_res() + eps;
        let strictly_better = self.input_cap() + eps < other.input_cap()
            || self.output_cap() + eps < other.output_cap()
            || self.output_res() + eps < other.output_res();
        no_worse && strictly_better
    }
}

impl fmt::Display for CompositeBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x {}", self.parallel, self.base.name)
    }
}

/// One row of the composite-inverter analysis (Table I of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeRow {
    /// Human-readable configuration label, e.g. `"8X Small"`.
    pub label: String,
    /// Input capacitance in fF.
    pub input_cap: f64,
    /// Output capacitance in fF.
    pub output_cap: f64,
    /// Output resistance in Ω.
    pub output_res: f64,
    /// Whether the configuration is on the Pareto front.
    pub non_dominated: bool,
}

/// Enumerates composite configurations of every library inverter up to
/// `max_parallel` copies and flags the non-dominated ones.
///
/// The returned vector is sorted by increasing input capacitance, so the
/// Pareto sweep is a single pass; this mirrors the dynamic-programming
/// selection described in the paper (whose details were omitted because the
/// contest library has only two inverter types).
pub fn enumerate_composites(library: &InverterLibrary, max_parallel: u32) -> Vec<CompositeBuffer> {
    let mut all: Vec<CompositeBuffer> = Vec::new();
    for kind in library.kinds() {
        for n in 1..=max_parallel.max(1) {
            all.push(CompositeBuffer::new(*kind, n));
        }
    }
    all.sort_by(|a, b| {
        a.input_cap()
            .partial_cmp(&b.input_cap())
            .expect("finite capacitances")
            .then(
                a.output_res()
                    .partial_cmp(&b.output_res())
                    .expect("finite resistances"),
            )
    });
    all
}

/// Selects the non-dominated composites (smaller input cap, output cap and
/// output resistance are all better).
pub fn pareto_front(composites: &[CompositeBuffer]) -> Vec<CompositeBuffer> {
    composites
        .iter()
        .filter(|c| !composites.iter().any(|other| other.dominates(c)))
        .copied()
        .collect()
}

/// Produces the Table-I style report for a library: one row per composite
/// configuration of interest, with the Pareto flag filled in.
pub fn composite_table(library: &InverterLibrary, max_parallel: u32) -> Vec<CompositeRow> {
    let all = enumerate_composites(library, max_parallel);
    let front = pareto_front(&all);
    all.iter()
        .map(|c| CompositeRow {
            label: format!("{}X {}", c.parallel(), c.base().name),
            input_cap: c.input_cap(),
            output_cap: c.output_cap(),
            output_res: c.output_res(),
            non_dominated: front.iter().any(|f| f == c),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Technology;

    #[test]
    fn parallel_composition_scales_parameters() {
        let tech = Technology::ispd09();
        let small = *tech.small_inverter();
        let c4 = CompositeBuffer::new(small, 4);
        assert!((c4.input_cap() - 4.0 * small.input_cap).abs() < 1e-12);
        assert!((c4.output_cap() - 4.0 * small.output_cap).abs() < 1e-12);
        assert!((c4.output_res() - small.output_res / 4.0).abs() < 1e-12);
    }

    #[test]
    fn eight_small_dominates_one_large_in_ispd09() {
        // This is the key observation of Table I in the paper.
        let tech = Technology::ispd09();
        let small8 = tech.composite(tech.small_inverter(), 8);
        let large1 = tech.composite(tech.large_inverter(), 1);
        assert!(small8.dominates(&large1));
        assert!(!large1.dominates(&small8));
    }

    #[test]
    fn pareto_front_excludes_dominated_configurations() {
        let tech = Technology::ispd09();
        let all = enumerate_composites(tech.inverters(), 8);
        let front = pareto_front(&all);
        assert!(!front.is_empty());
        // The single large inverter is dominated by 8x small, so it must not
        // be on the front.
        assert!(front
            .iter()
            .all(|c| !(c.base().name == tech.large_inverter().name && c.parallel() == 1)));
        // Every front member is itself undominated.
        for f in &front {
            assert!(!all.iter().any(|other| other.dominates(f)));
        }
    }

    #[test]
    fn composite_table_matches_paper_values() {
        let tech = Technology::ispd09();
        let table = composite_table(tech.inverters(), 8);
        let find = |label: &str| {
            table
                .iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("row {label} missing"))
                .clone()
        };
        let r8 = find("8X INV_SMALL");
        assert!((r8.input_cap - 33.6).abs() < 1e-9);
        assert!((r8.output_cap - 48.8).abs() < 1e-9);
        assert!((r8.output_res - 55.0).abs() < 1e-9);
        let r1l = find("1X INV_LARGE");
        assert!((r1l.input_cap - 35.0).abs() < 1e-9);
        assert!((r1l.output_cap - 80.0).abs() < 1e-9);
        assert!((r1l.output_res - 61.2).abs() < 1e-9);
        assert!(!r1l.non_dominated);
    }

    #[test]
    fn scaled_multiplies_parallelism() {
        let tech = Technology::ispd09();
        let c = tech.composite(tech.small_inverter(), 8);
        let c2 = c.scaled(2);
        assert_eq!(c2.parallel(), 16);
        assert!((c2.output_res() - c.output_res() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let tech = Technology::ispd09();
        let c = tech.composite(tech.small_inverter(), 8);
        let s = c.to_string();
        assert!(s.contains("8x"));
    }

    #[test]
    #[should_panic(expected = "at least one inverter")]
    fn zero_parallelism_rejected() {
        let tech = Technology::ispd09();
        let _ = CompositeBuffer::new(*tech.small_inverter(), 0);
    }
}
