//! Planar points with Manhattan metrics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the layout plane, in micrometres.
///
/// Clock-network geometry in this crate is rectilinear, so the natural
/// distance between points is the Manhattan (L1) distance returned by
/// [`Point::manhattan`].
///
/// ```
/// use contango_geom::Point;
/// let p = Point::new(1.0, 2.0);
/// let q = Point::new(4.0, 6.0);
/// assert_eq!(p.manhattan(q), 7.0);
/// assert_eq!(p.midpoint(q), Point::new(2.5, 4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in micrometres.
    pub x: f64,
    /// Vertical coordinate in micrometres.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates (micrometres).
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    #[inline]
    pub fn origin() -> Self {
        Self { x: 0.0, y: 0.0 }
    }

    /// Manhattan (L1) distance to `other`, in micrometres.
    #[inline]
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (L2) distance to `other`, in micrometres.
    ///
    /// Only used for tie-breaking and visualization; routing distances are
    /// always Manhattan.
    #[inline]
    pub fn euclidean(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Midpoint of the segment between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Returns `true` when both coordinates match within [`crate::GEOM_EPS`].
    #[inline]
    pub fn approx_eq(self, other: Point) -> bool {
        crate::approx_eq(self.x, other.x) && crate::approx_eq(self.y, other.y)
    }

    /// Rotated coordinate `u = x + y` used for Manhattan-arc computations.
    #[inline]
    pub fn u(self) -> f64 {
        self.x + self.y
    }

    /// Rotated coordinate `v = x - y` used for Manhattan-arc computations.
    #[inline]
    pub fn v(self) -> f64 {
        self.x - self.y
    }

    /// Reconstructs a point from rotated coordinates `(u, v)`.
    #[inline]
    pub fn from_uv(u: f64, v: f64) -> Point {
        Point::new((u + v) * 0.5, (u - v) * 0.5)
    }

    /// Linear interpolation: returns `self + t * (other - self)`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`; values outside `[0, 1]`
    /// extrapolate.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric() {
        let p = Point::new(3.0, -2.0);
        let q = Point::new(-1.0, 5.0);
        assert_eq!(p.manhattan(q), q.manhattan(p));
        assert_eq!(p.manhattan(q), 11.0);
    }

    #[test]
    fn manhattan_distance_to_self_is_zero() {
        let p = Point::new(12.5, 7.25);
        assert_eq!(p.manhattan(p), 0.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(10.0, 4.0);
        let m = p.midpoint(q);
        assert!(crate::approx_eq(m.manhattan(p), m.manhattan(q)));
    }

    #[test]
    fn rotated_coordinates_round_trip() {
        let p = Point::new(3.25, -8.5);
        let back = Point::from_uv(p.u(), p.v());
        assert!(p.approx_eq(back));
    }

    #[test]
    fn lerp_endpoints() {
        let p = Point::new(1.0, 1.0);
        let q = Point::new(5.0, 9.0);
        assert!(p.lerp(q, 0.0).approx_eq(p));
        assert!(p.lerp(q, 1.0).approx_eq(q));
        assert!(p.lerp(q, 0.5).approx_eq(p.midpoint(q)));
    }

    #[test]
    fn display_formats_coordinates() {
        let p = Point::new(1.0, 2.0);
        assert_eq!(format!("{p}"), "(1.000, 2.000)");
    }

    #[test]
    fn from_tuple() {
        let p: Point = (2.0, 3.0).into();
        assert_eq!(p, Point::new(2.0, 3.0));
    }
}
