//! Grid-bucket spatial index for nearest-neighbour queries.
//!
//! Clustering-based topology generation (Edahiro-style greedy matching) and
//! the benchmark generators repeatedly ask "which sink is closest to this
//! point?". A uniform grid of buckets answers that in near-constant time for
//! the clustered, roughly uniform point sets that occur in clock-network
//! synthesis, without pulling in a full k-d tree implementation.

use crate::{Point, Rect};

/// A uniform-grid spatial index over a fixed set of points.
///
/// Points are addressed by their index in the slice passed to
/// [`SpatialIndex::new`]. Queries support an optional "removed" mask so
/// matching algorithms can take points out of consideration without
/// rebuilding the index.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    points: Vec<Point>,
    bounds: Rect,
    cells_x: usize,
    cells_y: usize,
    cell_w: f64,
    cell_h: f64,
    buckets: Vec<Vec<usize>>,
    alive: Vec<bool>,
    alive_count: usize,
}

impl SpatialIndex {
    /// Builds an index over `points`.
    ///
    /// The grid resolution is chosen so each bucket holds a handful of
    /// points on average.
    pub fn new(points: &[Point]) -> Self {
        let n = points.len();
        let bounds = bounding_box(points);
        let target_cells = (n.max(1) as f64 / 2.0).sqrt().ceil() as usize;
        let cells_x = target_cells.max(1);
        let cells_y = target_cells.max(1);
        let cell_w = (bounds.width() / cells_x as f64).max(1e-9);
        let cell_h = (bounds.height() / cells_y as f64).max(1e-9);
        let mut index = Self {
            points: points.to_vec(),
            bounds,
            cells_x,
            cells_y,
            cell_w,
            cell_h,
            buckets: vec![Vec::new(); cells_x * cells_y],
            alive: vec![true; n],
            alive_count: n,
        };
        for (i, &p) in points.iter().enumerate() {
            let b = index.bucket_of(p);
            index.buckets[b].push(i);
        }
        index
    }

    /// Number of points still alive (not removed).
    pub fn len(&self) -> usize {
        self.alive_count
    }

    /// Returns `true` if every point has been removed (or none was added).
    pub fn is_empty(&self) -> bool {
        self.alive_count == 0
    }

    /// The coordinates of point `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn point(&self, index: usize) -> Point {
        self.points[index]
    }

    /// Returns `true` if point `index` has not been removed.
    pub fn is_alive(&self, index: usize) -> bool {
        self.alive.get(index).copied().unwrap_or(false)
    }

    /// Removes a point from future queries.
    ///
    /// Removing an already-removed point is a no-op.
    pub fn remove(&mut self, index: usize) {
        if index < self.alive.len() && self.alive[index] {
            self.alive[index] = false;
            self.alive_count -= 1;
        }
    }

    /// The nearest alive point to `query` (by Manhattan distance), excluding
    /// `exclude`, or `None` when no such point exists.
    pub fn nearest(&self, query: Point, exclude: Option<usize>) -> Option<usize> {
        if self.alive_count == 0 {
            return None;
        }
        let (qx, qy) = self.cell_coords(query);
        let max_ring = self.cells_x.max(self.cells_y);
        let mut best: Option<(f64, usize)> = None;
        for ring in 0..=max_ring {
            // Once a candidate is known, stop after the first ring whose
            // closest possible distance exceeds the candidate.
            if let Some((dist, _)) = best {
                let ring_min = (ring.saturating_sub(1)) as f64 * self.cell_w.min(self.cell_h);
                if ring_min > dist {
                    break;
                }
            }
            self.for_each_ring_cell(qx, qy, ring, |cx, cy| {
                for &i in &self.buckets[cy * self.cells_x + cx] {
                    if !self.alive[i] || Some(i) == exclude {
                        continue;
                    }
                    let d = self.points[i].manhattan(query);
                    if best.is_none_or(|(bd, bi)| d < bd || (d == bd && i < bi)) {
                        best = Some((d, i));
                    }
                }
            });
        }
        best.map(|(_, i)| i)
    }

    /// All alive points within Manhattan distance `radius` of `query`,
    /// sorted ascending by index.
    ///
    /// Only the grid buckets overlapping the query ball's bounding box are
    /// scanned; out-of-bounds points are clamped into the edge cells at
    /// insertion time, so clamping the scan range the same way keeps them
    /// reachable.
    pub fn within_radius(&self, query: Point, radius: f64) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        if self.alive_count == 0 || radius < 0.0 {
            return out;
        }
        let (cx0, cy0) = self.cell_coords(Point::new(query.x - radius, query.y - radius));
        let (cx1, cy1) = self.cell_coords(Point::new(query.x + radius, query.y + radius));
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &i in &self.buckets[cy * self.cells_x + cx] {
                    if self.alive[i] && self.points[i].manhattan(query) <= radius {
                        out.push(i);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn bucket_of(&self, p: Point) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.cells_x + cx
    }

    fn cell_coords(&self, p: Point) -> (usize, usize) {
        let cx = ((p.x - self.bounds.lo.x) / self.cell_w).floor() as isize;
        let cy = ((p.y - self.bounds.lo.y) / self.cell_h).floor() as isize;
        (
            cx.clamp(0, self.cells_x as isize - 1) as usize,
            cy.clamp(0, self.cells_y as isize - 1) as usize,
        )
    }

    /// Visits the cells at Chebyshev ring `ring` around `(qx, qy)`, clipped
    /// to the grid, without allocating: only the ring's perimeter is
    /// traversed (O(ring) per ring instead of scanning and filtering the
    /// full (2·ring+1)² square).
    fn for_each_ring_cell(
        &self,
        qx: usize,
        qy: usize,
        ring: usize,
        mut f: impl FnMut(usize, usize),
    ) {
        let r = ring as isize;
        let (qx, qy) = (qx as isize, qy as isize);
        let visit = |cx: isize, cy: isize, f: &mut dyn FnMut(usize, usize)| {
            if cx >= 0 && cy >= 0 && (cx as usize) < self.cells_x && (cy as usize) < self.cells_y {
                f(cx as usize, cy as usize);
            }
        };
        if r == 0 {
            visit(qx, qy, &mut f);
            return;
        }
        // Top and bottom rows of the ring …
        for dx in -r..=r {
            visit(qx + dx, qy - r, &mut f);
            visit(qx + dx, qy + r, &mut f);
        }
        // … and the two side columns, excluding the corners already visited.
        for dy in (-r + 1)..=(r - 1) {
            visit(qx - r, qy + dy, &mut f);
            visit(qx + r, qy + dy, &mut f);
        }
    }
}

/// Bounding box of a point set (a unit square at the origin when empty, so
/// the grid always has positive extent).
fn bounding_box(points: &[Point]) -> Rect {
    if points.is_empty() {
        return Rect::new(0.0, 0.0, 1.0, 1.0);
    }
    let mut r = Rect::new(points[0].x, points[0].y, points[0].x, points[0].y);
    for p in points {
        r = r.union(&Rect::new(p.x, p.y, p.x, p.y));
    }
    // Avoid degenerate zero-width grids for collinear point sets.
    Rect::new(
        r.lo.x,
        r.lo.y,
        r.hi.x.max(r.lo.x + 1.0),
        r.hi.y.max(r.lo.y + 1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize, pitch: f64) -> Vec<Point> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| Point::new((i % side) as f64 * pitch, (i / side) as f64 * pitch))
            .collect()
    }

    #[test]
    fn nearest_matches_brute_force() {
        let points = grid_points(60, 13.0);
        let index = SpatialIndex::new(&points);
        let queries = [
            Point::new(0.0, 0.0),
            Point::new(37.0, 52.0),
            Point::new(91.0, 10.0),
            Point::new(200.0, 200.0),
        ];
        for q in queries {
            let brute = points
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.manhattan(q).partial_cmp(&b.manhattan(q)).expect("finite")
                })
                .map(|(i, _)| points[i].manhattan(q))
                .expect("non-empty");
            let got = index.nearest(q, None).expect("found");
            assert!(
                (points[got].manhattan(q) - brute).abs() < 1e-9,
                "query {q:?}: got distance {} expected {}",
                points[got].manhattan(q),
                brute
            );
        }
    }

    #[test]
    fn exclusion_and_removal_are_honoured() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(10.0, 0.0),
        ];
        let mut index = SpatialIndex::new(&points);
        assert_eq!(index.nearest(Point::new(0.1, 0.0), Some(0)), Some(1));
        index.remove(1);
        assert_eq!(index.nearest(Point::new(0.1, 0.0), Some(0)), Some(2));
        index.remove(1);
        assert_eq!(index.len(), 2);
        index.remove(0);
        index.remove(2);
        assert!(index.is_empty());
        assert_eq!(index.nearest(Point::new(0.0, 0.0), None), None);
    }

    #[test]
    fn within_radius_returns_sorted_hits() {
        let points = grid_points(25, 10.0);
        let index = SpatialIndex::new(&points);
        let hits = index.within_radius(Point::new(0.0, 0.0), 10.0);
        // (0,0), (10,0), (0,10) are within Manhattan distance 10.
        assert_eq!(hits, vec![0, 1, 5]);
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let mut points = grid_points(80, 7.0);
        // A far-out-of-grid outlier lands in a clamped edge cell and must
        // still be found by queries near it.
        points.push(Point::new(500.0, -300.0));
        let mut index = SpatialIndex::new(&points);
        index.remove(13);
        index.remove(57);
        let queries = [
            (Point::new(0.0, 0.0), 15.0),
            (Point::new(31.0, 42.0), 9.5),
            (Point::new(-20.0, -20.0), 60.0),
            (Point::new(495.0, -290.0), 20.0),
            (Point::new(30.0, 30.0), 0.0),
            (Point::new(30.0, 30.0), -1.0),
            (Point::new(30.0, 30.0), 1e6),
        ];
        for (q, r) in queries {
            let brute: Vec<usize> = (0..points.len())
                .filter(|&i| index.is_alive(i) && r >= 0.0 && points[i].manhattan(q) <= r)
                .collect();
            assert_eq!(index.within_radius(q, r), brute, "query {q:?} radius {r}");
        }
    }

    #[test]
    fn within_radius_on_empty_index_is_empty() {
        let empty = SpatialIndex::new(&[]);
        assert!(empty.within_radius(Point::new(0.0, 0.0), 100.0).is_empty());
        let mut index = SpatialIndex::new(&[Point::new(1.0, 1.0)]);
        index.remove(0);
        assert!(index.within_radius(Point::new(1.0, 1.0), 100.0).is_empty());
    }

    #[test]
    fn single_point_and_empty_sets() {
        let index = SpatialIndex::new(&[Point::new(5.0, 5.0)]);
        assert_eq!(index.nearest(Point::new(0.0, 0.0), None), Some(0));
        assert_eq!(index.nearest(Point::new(0.0, 0.0), Some(0)), None);
        let empty = SpatialIndex::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.nearest(Point::new(0.0, 0.0), None), None);
    }

    #[test]
    fn clustered_points_still_resolve() {
        let mut points = Vec::new();
        for i in 0..50 {
            points.push(Point::new(1000.0 + (i % 5) as f64, 2000.0 + (i / 5) as f64));
        }
        points.push(Point::new(0.0, 0.0));
        let index = SpatialIndex::new(&points);
        assert_eq!(index.nearest(Point::new(1.0, 1.0), None), Some(50));
        let far = index
            .nearest(Point::new(1002.0, 2003.0), None)
            .expect("hit");
        assert!(points[far].manhattan(Point::new(1002.0, 2003.0)) <= 1.0);
    }
}
