//! Grid-bucket spatial index for nearest-neighbour queries.
//!
//! Clustering-based topology generation (Edahiro-style greedy matching) and
//! the benchmark generators repeatedly ask "which sink is closest to this
//! point?". A uniform grid of buckets answers that in near-constant time for
//! the clustered, roughly uniform point sets that occur in clock-network
//! synthesis, without pulling in a full k-d tree implementation.
//!
//! Two properties matter to the construction engine that drives every
//! greedy-matching pairing round through this index:
//!
//! * [`SpatialIndex::remove`] *physically* deletes the point from its grid
//!   bucket (a swap-remove via a stored per-point bucket position), so
//!   queries late in a pairing round — when almost every point has been
//!   matched — never scan dead entries. With a pure "removed" mask the ring
//!   search degenerates towards a full scan per query and the matching round
//!   towards O(n²).
//! * [`SpatialIndex::rebuild`] re-buckets the index in bulk for a new point
//!   set while reusing every existing allocation, so per-round index
//!   construction costs no heap traffic in steady state.

use crate::{Point, Rect};

/// Marker for "point not bucketed" in the per-point bucket bookkeeping.
const NO_BUCKET: u32 = u32::MAX;

/// A uniform-grid spatial index over a fixed set of points.
///
/// Points are addressed by their index in the slice passed to
/// [`SpatialIndex::new`] (or the latest [`SpatialIndex::rebuild`]). Queries
/// see only points that have not been [`SpatialIndex::remove`]d; removal is
/// physical, so query cost tracks the number of *alive* points.
#[derive(Debug, Clone, Default)]
pub struct SpatialIndex {
    points: Vec<Point>,
    bounds: Rect,
    cells_x: usize,
    cells_y: usize,
    cell_w: f64,
    cell_h: f64,
    buckets: Vec<Vec<usize>>,
    /// Bucket index of every point (`NO_BUCKET` once removed).
    point_bucket: Vec<u32>,
    /// Position of every point inside its bucket (kept in sync by
    /// swap-removal).
    point_pos: Vec<u32>,
    /// Compact list of alive point indices (swap-removed in step with the
    /// buckets), so drained index states can be scanned directly instead of
    /// ring-walking a nearly empty grid.
    alive_list: Vec<usize>,
    /// Position of every alive point in `alive_list`.
    list_pos: Vec<u32>,
    alive: Vec<bool>,
    alive_count: usize,
}

/// Below this many alive points, `nearest` scans the alive list directly:
/// cheaper than expanding rings across a sparse grid, with identical
/// results.
const BRUTE_FORCE_THRESHOLD: usize = 48;

impl SpatialIndex {
    /// Builds an index over `points`.
    ///
    /// The grid resolution is chosen so each bucket holds a handful of
    /// points on average.
    pub fn new(points: &[Point]) -> Self {
        let mut index = Self::default();
        index.rebuild(points);
        index
    }

    /// Re-buckets the index over a new point set in bulk, reusing the
    /// existing bucket allocations.
    ///
    /// Equivalent to `*self = SpatialIndex::new(points)` but without
    /// discarding the grid's heap storage; the greedy-matching engine calls
    /// this once per pairing round.
    pub fn rebuild(&mut self, points: &[Point]) {
        let n = points.len();
        let bounds = bounding_box(points);
        // Aim for ~2 points per bucket with *square* cells: proportioning
        // the grid to the bounding-box aspect ratio keeps nearest-neighbour
        // ring searches cheap on elongated point sets (register-bank rows),
        // where a square cell *count* would produce needle-shaped cells and
        // force queries through the whole grid.
        let target_cells = (n.max(1) as f64 / 2.0).max(1.0);
        // Clamping the aspect keeps degenerate (near-1-D) point sets from
        // exploding the cell count along the long axis.
        let aspect = (bounds.width() / bounds.height()).clamp(1.0 / 32.0, 32.0);
        let cells_x = ((target_cells * aspect).sqrt().ceil() as usize).max(1);
        let cells_y = ((target_cells / cells_x as f64).ceil() as usize).max(1);

        self.points.clear();
        self.points.extend_from_slice(points);
        self.bounds = bounds;
        self.cells_x = cells_x;
        self.cells_y = cells_y;
        self.cell_w = (bounds.width() / cells_x as f64).max(1e-9);
        self.cell_h = (bounds.height() / cells_y as f64).max(1e-9);

        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.buckets.resize(cells_x * cells_y, Vec::new());
        self.point_bucket.clear();
        self.point_bucket.resize(n, NO_BUCKET);
        self.point_pos.clear();
        self.point_pos.resize(n, 0);
        self.alive_list.clear();
        self.alive_list.extend(0..n);
        self.list_pos.clear();
        self.list_pos.extend(0..n as u32);
        self.alive.clear();
        self.alive.resize(n, true);
        self.alive_count = n;

        for (i, &p) in points.iter().enumerate() {
            let b = self.bucket_of(p);
            self.point_bucket[i] = b as u32;
            self.point_pos[i] = self.buckets[b].len() as u32;
            self.buckets[b].push(i);
        }
    }

    /// Number of points still alive (not removed).
    pub fn len(&self) -> usize {
        self.alive_count
    }

    /// Returns `true` if every point has been removed (or none was added).
    pub fn is_empty(&self) -> bool {
        self.alive_count == 0
    }

    /// The coordinates of point `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn point(&self, index: usize) -> Point {
        self.points[index]
    }

    /// Returns `true` if point `index` has not been removed.
    pub fn is_alive(&self, index: usize) -> bool {
        self.alive.get(index).copied().unwrap_or(false)
    }

    /// Removes a point from future queries.
    ///
    /// The point is physically deleted from its grid bucket (an O(1)
    /// swap-remove), so subsequent queries never revisit it. Removing an
    /// already-removed point is a no-op.
    pub fn remove(&mut self, index: usize) {
        if index < self.alive.len() && self.alive[index] {
            self.alive[index] = false;
            self.alive_count -= 1;
            let b = self.point_bucket[index] as usize;
            let pos = self.point_pos[index] as usize;
            let bucket = &mut self.buckets[b];
            bucket.swap_remove(pos);
            if let Some(&moved) = bucket.get(pos) {
                self.point_pos[moved] = pos as u32;
            }
            self.point_bucket[index] = NO_BUCKET;
            let lp = self.list_pos[index] as usize;
            self.alive_list.swap_remove(lp);
            if let Some(&moved) = self.alive_list.get(lp) {
                self.list_pos[moved] = lp as u32;
            }
        }
    }

    /// The nearest alive point to `query` (by Manhattan distance), excluding
    /// `exclude`, or `None` when no such point exists.
    pub fn nearest(&self, query: Point, exclude: Option<usize>) -> Option<usize> {
        if self.alive_count == 0 {
            return None;
        }
        // Drained index: scan the compact alive list directly. Selection is
        // by (distance, index), so the result is identical to the grid walk.
        if self.alive_count <= BRUTE_FORCE_THRESHOLD {
            let mut best: Option<(f64, usize)> = None;
            for &i in &self.alive_list {
                if Some(i) == exclude {
                    continue;
                }
                let d = self.points[i].manhattan(query);
                if best.is_none_or(|(bd, bi)| d < bd || (d == bd && i < bi)) {
                    best = Some((d, i));
                }
            }
            return best.map(|(_, i)| i);
        }
        let (qx, qy) = self.cell_coords(query);
        // Rings beyond the furthest grid edge contain no cells at all.
        let max_ring = (qx.max(self.cells_x - 1 - qx)).max(qy.max(self.cells_y - 1 - qy));
        let mut best: Option<(f64, usize)> = None;
        for ring in 0..=max_ring {
            // Once a candidate is known, stop after the first ring whose
            // closest possible distance exceeds the candidate.
            if let Some((dist, _)) = best {
                let ring_min = (ring.saturating_sub(1)) as f64 * self.cell_w.min(self.cell_h);
                if ring_min > dist {
                    break;
                }
            }
            let r = ring as isize;
            let (qx, qy) = (qx as isize, qy as isize);
            if r == 0 {
                self.scan_bucket(qx as usize, qy as usize, query, exclude, &mut best);
                continue;
            }
            // Top and bottom rows of the ring, clipped to the grid …
            let x0 = (qx - r).max(0) as usize;
            let x1 = (qx + r).min(self.cells_x as isize - 1) as usize;
            if qy - r >= 0 {
                let cy = (qy - r) as usize;
                for cx in x0..=x1 {
                    self.scan_bucket(cx, cy, query, exclude, &mut best);
                }
            }
            if qy + r < self.cells_y as isize {
                let cy = (qy + r) as usize;
                for cx in x0..=x1 {
                    self.scan_bucket(cx, cy, query, exclude, &mut best);
                }
            }
            // … and the two side columns, excluding the corners already
            // visited.
            let y0 = (qy - r + 1).max(0) as usize;
            let y1 = (qy + r - 1).min(self.cells_y as isize - 1) as usize;
            if qx - r >= 0 {
                let cx = (qx - r) as usize;
                for cy in y0..=y1 {
                    self.scan_bucket(cx, cy, query, exclude, &mut best);
                }
            }
            if qx + r < self.cells_x as isize {
                let cx = (qx + r) as usize;
                for cy in y0..=y1 {
                    self.scan_bucket(cx, cy, query, exclude, &mut best);
                }
            }
        }
        best.map(|(_, i)| i)
    }

    /// Scans one grid bucket for the nearest-candidate update.
    #[inline]
    fn scan_bucket(
        &self,
        cx: usize,
        cy: usize,
        query: Point,
        exclude: Option<usize>,
        best: &mut Option<(f64, usize)>,
    ) {
        for &i in &self.buckets[cy * self.cells_x + cx] {
            if Some(i) == exclude {
                continue;
            }
            let d = self.points[i].manhattan(query);
            if best.is_none_or(|(bd, bi)| d < bd || (d == bd && i < bi)) {
                *best = Some((d, i));
            }
        }
    }

    /// All alive points within Manhattan distance `radius` of `query`,
    /// sorted ascending by index.
    ///
    /// Only the grid buckets overlapping the query ball's bounding box are
    /// scanned; out-of-bounds points are clamped into the edge cells at
    /// insertion time, so clamping the scan range the same way keeps them
    /// reachable.
    pub fn within_radius(&self, query: Point, radius: f64) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        if self.alive_count == 0 || radius < 0.0 {
            return out;
        }
        let (cx0, cy0) = self.cell_coords(Point::new(query.x - radius, query.y - radius));
        let (cx1, cy1) = self.cell_coords(Point::new(query.x + radius, query.y + radius));
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &i in &self.buckets[cy * self.cells_x + cx] {
                    if self.alive[i] && self.points[i].manhattan(query) <= radius {
                        out.push(i);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn bucket_of(&self, p: Point) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.cells_x + cx
    }

    fn cell_coords(&self, p: Point) -> (usize, usize) {
        let cx = ((p.x - self.bounds.lo.x) / self.cell_w).floor() as isize;
        let cy = ((p.y - self.bounds.lo.y) / self.cell_h).floor() as isize;
        (
            cx.clamp(0, self.cells_x as isize - 1) as usize,
            cy.clamp(0, self.cells_y as isize - 1) as usize,
        )
    }
}

/// Bounding box of a point set (a unit square at the origin when empty, so
/// the grid always has positive extent).
fn bounding_box(points: &[Point]) -> Rect {
    if points.is_empty() {
        return Rect::new(0.0, 0.0, 1.0, 1.0);
    }
    let mut r = Rect::new(points[0].x, points[0].y, points[0].x, points[0].y);
    for p in points {
        r = r.union(&Rect::new(p.x, p.y, p.x, p.y));
    }
    // Avoid degenerate zero-width grids for collinear point sets.
    Rect::new(
        r.lo.x,
        r.lo.y,
        r.hi.x.max(r.lo.x + 1.0),
        r.hi.y.max(r.lo.y + 1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize, pitch: f64) -> Vec<Point> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| Point::new((i % side) as f64 * pitch, (i / side) as f64 * pitch))
            .collect()
    }

    #[test]
    fn nearest_matches_brute_force() {
        let points = grid_points(60, 13.0);
        let index = SpatialIndex::new(&points);
        let queries = [
            Point::new(0.0, 0.0),
            Point::new(37.0, 52.0),
            Point::new(91.0, 10.0),
            Point::new(200.0, 200.0),
        ];
        for q in queries {
            let brute = points
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.manhattan(q).partial_cmp(&b.manhattan(q)).expect("finite")
                })
                .map(|(i, _)| points[i].manhattan(q))
                .expect("non-empty");
            let got = index.nearest(q, None).expect("found");
            assert!(
                (points[got].manhattan(q) - brute).abs() < 1e-9,
                "query {q:?}: got distance {} expected {}",
                points[got].manhattan(q),
                brute
            );
        }
    }

    #[test]
    fn exclusion_and_removal_are_honoured() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(10.0, 0.0),
        ];
        let mut index = SpatialIndex::new(&points);
        assert_eq!(index.nearest(Point::new(0.1, 0.0), Some(0)), Some(1));
        index.remove(1);
        assert_eq!(index.nearest(Point::new(0.1, 0.0), Some(0)), Some(2));
        index.remove(1);
        assert_eq!(index.len(), 2);
        index.remove(0);
        index.remove(2);
        assert!(index.is_empty());
        assert_eq!(index.nearest(Point::new(0.0, 0.0), None), None);
    }

    #[test]
    fn within_radius_returns_sorted_hits() {
        let points = grid_points(25, 10.0);
        let index = SpatialIndex::new(&points);
        let hits = index.within_radius(Point::new(0.0, 0.0), 10.0);
        // (0,0), (10,0), (0,10) are within Manhattan distance 10.
        assert_eq!(hits, vec![0, 1, 5]);
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let mut points = grid_points(80, 7.0);
        // A far-out-of-grid outlier lands in a clamped edge cell and must
        // still be found by queries near it.
        points.push(Point::new(500.0, -300.0));
        let mut index = SpatialIndex::new(&points);
        index.remove(13);
        index.remove(57);
        let queries = [
            (Point::new(0.0, 0.0), 15.0),
            (Point::new(31.0, 42.0), 9.5),
            (Point::new(-20.0, -20.0), 60.0),
            (Point::new(495.0, -290.0), 20.0),
            (Point::new(30.0, 30.0), 0.0),
            (Point::new(30.0, 30.0), -1.0),
            (Point::new(30.0, 30.0), 1e6),
        ];
        for (q, r) in queries {
            let brute: Vec<usize> = (0..points.len())
                .filter(|&i| index.is_alive(i) && r >= 0.0 && points[i].manhattan(q) <= r)
                .collect();
            assert_eq!(index.within_radius(q, r), brute, "query {q:?} radius {r}");
        }
    }

    #[test]
    fn within_radius_on_empty_index_is_empty() {
        let empty = SpatialIndex::new(&[]);
        assert!(empty.within_radius(Point::new(0.0, 0.0), 100.0).is_empty());
        let mut index = SpatialIndex::new(&[Point::new(1.0, 1.0)]);
        index.remove(0);
        assert!(index.within_radius(Point::new(1.0, 1.0), 100.0).is_empty());
    }

    #[test]
    fn rebuild_reuses_the_index_like_a_fresh_one() {
        let a = grid_points(70, 9.0);
        let mut b = grid_points(31, 17.0);
        b.push(Point::new(-40.0, 333.0));
        let mut reused = SpatialIndex::new(&a);
        reused.remove(3);
        reused.remove(40);
        reused.rebuild(&b);
        let fresh = SpatialIndex::new(&b);
        assert_eq!(reused.len(), fresh.len());
        for q in [
            Point::new(0.0, 0.0),
            Point::new(100.0, 40.0),
            Point::new(-39.0, 330.0),
        ] {
            assert_eq!(reused.nearest(q, None), fresh.nearest(q, None));
            assert_eq!(reused.within_radius(q, 25.0), fresh.within_radius(q, 25.0));
        }
        // Removed state from before the rebuild must not leak through.
        assert!(reused.is_alive(3));
    }

    #[test]
    fn drained_index_stays_exact() {
        // Physical removal + the brute-force fallback: queries against a
        // nearly drained index must still return the exact nearest point.
        let points = grid_points(120, 11.0);
        let mut index = SpatialIndex::new(&points);
        let mut alive: Vec<usize> = (0..points.len()).collect();
        // Drain in an interleaved order, checking after every removal.
        for step in 0..points.len() - 1 {
            let victim = alive.remove((step * 7) % alive.len());
            index.remove(victim);
            let q = Point::new(37.0 + step as f64, 59.0);
            let brute = alive
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    points[a]
                        .manhattan(q)
                        .partial_cmp(&points[b].manhattan(q))
                        .expect("finite")
                        .then(a.cmp(&b))
                })
                .expect("non-empty");
            let got = index.nearest(q, None).expect("found");
            assert_eq!(
                points[got].manhattan(q),
                points[brute].manhattan(q),
                "step {step}"
            );
        }
    }

    #[test]
    fn elongated_point_sets_keep_square_cells() {
        // A single row of points: the clamped-aspect grid must still answer
        // nearest queries exactly at both ends.
        let points: Vec<Point> = (0..400).map(|i| Point::new(25.0 * i as f64, 5.0)).collect();
        let mut index = SpatialIndex::new(&points);
        assert_eq!(index.nearest(Point::new(-10.0, 5.0), None), Some(0));
        assert_eq!(index.nearest(Point::new(9990.0, 5.0), None), Some(399));
        index.remove(0);
        assert_eq!(index.nearest(Point::new(-10.0, 5.0), None), Some(1));
    }

    #[test]
    fn single_point_and_empty_sets() {
        let index = SpatialIndex::new(&[Point::new(5.0, 5.0)]);
        assert_eq!(index.nearest(Point::new(0.0, 0.0), None), Some(0));
        assert_eq!(index.nearest(Point::new(0.0, 0.0), Some(0)), None);
        let empty = SpatialIndex::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.nearest(Point::new(0.0, 0.0), None), None);
    }

    #[test]
    fn clustered_points_still_resolve() {
        let mut points = Vec::new();
        for i in 0..50 {
            points.push(Point::new(1000.0 + (i % 5) as f64, 2000.0 + (i / 5) as f64));
        }
        points.push(Point::new(0.0, 0.0));
        let index = SpatialIndex::new(&points);
        assert_eq!(index.nearest(Point::new(1.0, 1.0), None), Some(50));
        let far = index
            .nearest(Point::new(1002.0, 2003.0), None)
            .expect("hit");
        assert!(points[far].manhattan(Point::new(1002.0, 2003.0)) <= 1.0);
    }
}
