//! Manhattan geometry primitives for SoC clock-network synthesis.
//!
//! This crate provides the geometric substrate used by the Contango
//! clock-tree synthesis flow:
//!
//! * [`Point`] / [`Rect`] — planar points and axis-aligned rectangles with
//!   Manhattan (rectilinear) metrics, expressed in micrometres.
//! * [`Segment`] and [`LShape`] — rectilinear wire geometry between two
//!   points, including the two possible L-shaped embeddings of a diagonal
//!   connection.
//! * [`TiltedRect`] — tilted rectangular regions and Manhattan arcs
//!   ("merging segments") used by deferred-merge embedding (DME) algorithms.
//! * [`Obstacle`], [`ObstacleSet`] and [`CompoundObstacle`] — placement
//!   blockages. Abutting or overlapping rectangles are merged into compound
//!   obstacles because no buffer can be placed between two abutting macros.
//! * [`MazeRouter`] — shortest rectilinear obstacle-avoiding point-to-point
//!   routing on an escape (Hanan-like) graph.
//!
//! # Example
//!
//! ```
//! use contango_geom::{Point, Rect, ObstacleSet, Obstacle};
//!
//! let a = Point::new(0.0, 0.0);
//! let b = Point::new(30.0, 40.0);
//! assert_eq!(a.manhattan(b), 70.0);
//!
//! let mut obstacles = ObstacleSet::new();
//! obstacles.push(Obstacle::new(Rect::new(10.0, 10.0, 20.0, 20.0)));
//! assert!(obstacles.contains_point(Point::new(15.0, 15.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lshape;
mod maze;
mod obstacle;
mod point;
mod rect;
mod segment;
mod spatial;
pub mod steiner;
mod trr;

pub use lshape::{LOrientation, LShape};
pub use maze::{MazeRouter, RoutePath};
pub use obstacle::{CompoundObstacle, Obstacle, ObstacleSet};
pub use point::Point;
pub use rect::Rect;
pub use segment::Segment;
pub use spatial::SpatialIndex;
pub use steiner::{half_perimeter_wirelength, rectilinear_mst, SteinerError, SteinerTree};
pub use trr::TiltedRect;

/// Tolerance used for floating-point geometric comparisons, in micrometres.
///
/// Coordinates in this crate are micrometres; one thousandth of a micrometre
/// (a nanometre) is far below any manufacturable feature size, so it is a
/// safe equality tolerance.
pub const GEOM_EPS: f64 = 1e-3;

/// Returns `true` if two lengths/coordinates are equal within [`GEOM_EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= GEOM_EPS
}
