//! Rectilinear Steiner tree construction.
//!
//! DME builds the clock tree's topology, but several surrounding pieces of
//! the flow — obstacle detours, benchmark analysis, and the baseline flows —
//! need a plain rectilinear Steiner tree over a set of terminals: the
//! structure signal-net routers build (the paper cites obstacle-avoiding
//! Steiner trees as the signal-net analogue of its detouring problem).
//!
//! Two constructions are provided:
//!
//! * [`rectilinear_mst`] — the rectilinear minimum spanning tree (Prim), a
//!   guaranteed 1.5-approximation of the optimal Steiner tree.
//! * [`SteinerTree::build`] — a Prim-to-segment heuristic: each terminal
//!   attaches to the closest point of the *tree built so far* (which may be
//!   in the middle of an existing wire), creating Steiner points as needed.
//!   Its wirelength never exceeds the MST wirelength.

use crate::{Point, Rect, Segment};
use std::fmt;

/// A structural invariant violated by a [`SteinerTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteinerError {
    /// An edge references a node index beyond the node list.
    MissingNode {
        /// First endpoint of the offending edge.
        a: usize,
        /// Second endpoint of the offending edge.
        b: usize,
    },
    /// An edge is not axis-parallel.
    NotRectilinear {
        /// First endpoint of the offending edge.
        a: usize,
        /// Second endpoint of the offending edge.
        b: usize,
    },
    /// A terminal is not connected to the rest of the tree.
    DisconnectedTerminal {
        /// Index of the disconnected terminal.
        terminal: usize,
    },
    /// The edge set contains a cycle or disconnected Steiner points.
    CycleOrDisconnected,
}

impl fmt::Display for SteinerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SteinerError::MissingNode { a, b } => {
                write!(f, "edge ({a}, {b}) references a missing node")
            }
            SteinerError::NotRectilinear { a, b } => {
                write!(f, "edge ({a}, {b}) is not axis-parallel")
            }
            SteinerError::DisconnectedTerminal { terminal } => {
                write!(f, "terminal {terminal} is not connected")
            }
            SteinerError::CycleOrDisconnected => {
                write!(f, "tree contains a cycle or disconnected Steiner points")
            }
        }
    }
}

impl std::error::Error for SteinerError {}

/// Returns the edges of the rectilinear (Manhattan) minimum spanning tree
/// over `points`, as index pairs, using Prim's algorithm in `O(n²)`.
///
/// Returns an empty list for fewer than two points.
pub fn rectilinear_mst(points: &[Point]) -> Vec<(usize, usize)> {
    let n = points.len();
    if n < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_link = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for i in 1..n {
        best_dist[i] = points[i].manhattan(points[0]);
    }
    for _ in 1..n {
        let mut next = usize::MAX;
        let mut next_dist = f64::INFINITY;
        for i in 0..n {
            if !in_tree[i] && best_dist[i] < next_dist {
                next = i;
                next_dist = best_dist[i];
            }
        }
        in_tree[next] = true;
        edges.push((best_link[next], next));
        for i in 0..n {
            if !in_tree[i] {
                let d = points[i].manhattan(points[next]);
                if d < best_dist[i] {
                    best_dist[i] = d;
                    best_link[i] = next;
                }
            }
        }
    }
    edges
}

/// Total Manhattan length of an edge list over `points`.
pub fn edge_list_length(points: &[Point], edges: &[(usize, usize)]) -> f64 {
    edges
        .iter()
        .map(|&(a, b)| points[a].manhattan(points[b]))
        .sum()
}

/// Half-perimeter wirelength of a point set: the perimeter of the bounding
/// box divided by two. A lower bound on any Steiner tree's wirelength.
pub fn half_perimeter_wirelength(points: &[Point]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let mut bbox = Rect::new(points[0].x, points[0].y, points[0].x, points[0].y);
    for p in points {
        bbox = bbox.union(&Rect::new(p.x, p.y, p.x, p.y));
    }
    bbox.width() + bbox.height()
}

/// A rectilinear Steiner tree over a set of terminals.
///
/// Node indices `0..terminal_count` are the input terminals (in input
/// order); higher indices are Steiner points introduced by the
/// construction. Every edge is an axis-parallel segment between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct SteinerTree {
    nodes: Vec<Point>,
    edges: Vec<(usize, usize)>,
    terminal_count: usize,
}

impl SteinerTree {
    /// Builds a Steiner tree over `terminals` with the Prim-to-segment
    /// heuristic, growing the tree from `terminals[0]`.
    ///
    /// # Panics
    ///
    /// Panics if `terminals` is empty.
    pub fn build(terminals: &[Point]) -> Self {
        assert!(!terminals.is_empty(), "at least one terminal is required");
        let mut tree = Self {
            nodes: vec![terminals[0]],
            edges: Vec::new(),
            terminal_count: terminals.len(),
        };
        // Terminals are reserved up front so their indices match input
        // order; Steiner points are appended afterwards.
        tree.nodes = terminals.to_vec();
        let mut connected = vec![false; terminals.len()];
        connected[0] = true;

        for _ in 1..terminals.len() {
            // Pick the unconnected terminal closest to the current tree.
            let mut best: Option<(f64, usize, Point, usize, usize)> = None;
            for (ti, &t) in terminals.iter().enumerate() {
                if connected[ti] {
                    continue;
                }
                let (dist, attach, edge_a, edge_b) = tree.closest_point_on_tree(t, &connected);
                if best.is_none_or(|(bd, ..)| dist < bd) {
                    best = Some((dist, ti, attach, edge_a, edge_b));
                }
            }
            let (_, ti, attach, edge_a, edge_b) = best.expect("an unconnected terminal exists");
            let attach_idx = tree.node_at(attach, edge_a, edge_b);
            tree.connect_l(attach_idx, ti);
            connected[ti] = true;
        }
        tree
    }

    /// The closest point of the current tree to `target`: returns the
    /// distance, the point, and the edge `(a, b)` it lies on (`a == b` when
    /// the closest point is an existing node).
    fn closest_point_on_tree(
        &self,
        target: Point,
        connected: &[bool],
    ) -> (f64, Point, usize, usize) {
        let mut best = (f64::INFINITY, self.nodes[0], 0usize, 0usize);
        // Existing connected terminals and all Steiner nodes are candidates.
        for (i, &p) in self.nodes.iter().enumerate() {
            let usable = if i < connected.len() {
                connected[i]
            } else {
                true
            };
            if !usable {
                continue;
            }
            let d = target.manhattan(p);
            if d < best.0 {
                best = (d, p, i, i);
            }
        }
        // Points in the middle of existing edges are candidates too.
        for &(a, b) in &self.edges {
            let seg = Segment::new(self.nodes[a], self.nodes[b]);
            let p = closest_point_on_segment(&seg, target);
            let d = target.manhattan(p);
            if d < best.0 {
                best = (d, p, a, b);
            }
        }
        best
    }

    /// Returns the index of a node at `location`, splitting the edge
    /// `(edge_a, edge_b)` with a new Steiner point when `location` is not an
    /// existing endpoint.
    fn node_at(&mut self, location: Point, edge_a: usize, edge_b: usize) -> usize {
        if self.nodes[edge_a].approx_eq(location) {
            return edge_a;
        }
        if self.nodes[edge_b].approx_eq(location) {
            return edge_b;
        }
        let idx = self.nodes.len();
        self.nodes.push(location);
        // Split the host edge.
        if let Some(pos) = self
            .edges
            .iter()
            .position(|&(a, b)| (a == edge_a && b == edge_b) || (a == edge_b && b == edge_a))
        {
            self.edges.swap_remove(pos);
            self.edges.push((edge_a, idx));
            self.edges.push((idx, edge_b));
        }
        idx
    }

    /// Connects terminal `terminal` to node `from` with an L-shaped route,
    /// adding the corner as a Steiner point when the connection bends.
    fn connect_l(&mut self, from: usize, terminal: usize) {
        let a = self.nodes[from];
        let b = self.nodes[terminal];
        if (a.x - b.x).abs() < crate::GEOM_EPS || (a.y - b.y).abs() < crate::GEOM_EPS {
            self.edges.push((from, terminal));
            return;
        }
        // Corner chosen to keep both legs axis-parallel; the specific
        // orientation does not change the length.
        let corner = Point::new(b.x, a.y);
        let corner_idx = self.nodes.len();
        self.nodes.push(corner);
        self.edges.push((from, corner_idx));
        self.edges.push((corner_idx, terminal));
    }

    /// All node locations: terminals first, Steiner points after.
    pub fn nodes(&self) -> &[Point] {
        &self.nodes
    }

    /// The tree edges as node-index pairs.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of input terminals.
    pub fn terminal_count(&self) -> usize {
        self.terminal_count
    }

    /// Number of Steiner points introduced by the construction.
    pub fn steiner_count(&self) -> usize {
        self.nodes.len() - self.terminal_count
    }

    /// Total wirelength of the tree, in the same units as the inputs.
    pub fn wirelength(&self) -> f64 {
        edge_list_length(&self.nodes, &self.edges)
    }

    /// Checks structural invariants: the tree is connected, spans every
    /// terminal, has no cycles (edge count is node count − 1 after pruning
    /// duplicates) and every edge is axis-parallel.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`SteinerError`].
    pub fn validate(&self) -> Result<(), SteinerError> {
        for &(a, b) in &self.edges {
            if a >= self.nodes.len() || b >= self.nodes.len() {
                return Err(SteinerError::MissingNode { a, b });
            }
            let seg = Segment::new(self.nodes[a], self.nodes[b]);
            if !seg.is_rectilinear() {
                return Err(SteinerError::NotRectilinear { a, b });
            }
        }
        // Connectivity over the undirected edge set.
        let n = self.nodes.len();
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &w in &adjacency[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        if let Some(t) = seen[..self.terminal_count].iter().position(|&s| !s) {
            return Err(SteinerError::DisconnectedTerminal { terminal: t });
        }
        if self.edges.len() + 1 != seen.iter().filter(|&&s| s).count() {
            return Err(SteinerError::CycleOrDisconnected);
        }
        Ok(())
    }
}

/// The point of a rectilinear segment closest (in Manhattan distance) to
/// `target`. For a degenerate segment this is its endpoint.
fn closest_point_on_segment(seg: &Segment, target: Point) -> Point {
    let (a, b) = (seg.a, seg.b);
    if seg.is_horizontal() {
        let x = target.x.clamp(a.x.min(b.x), a.x.max(b.x));
        Point::new(x, a.y)
    } else if seg.is_vertical() {
        let y = target.y.clamp(a.y.min(b.y), a.y.max(b.y));
        Point::new(a.x, y)
    } else {
        // Non-rectilinear segments do not occur inside SteinerTree; fall
        // back to the nearer endpoint.
        if target.manhattan(a) <= target.manhattan(b) {
            a
        } else {
            b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mst_of_collinear_points_is_a_chain() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(30.0, 0.0),
        ];
        let edges = rectilinear_mst(&points);
        assert_eq!(edges.len(), 3);
        assert!((edge_list_length(&points, &edges) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn mst_handles_trivial_inputs() {
        assert!(rectilinear_mst(&[]).is_empty());
        assert!(rectilinear_mst(&[Point::new(1.0, 1.0)]).is_empty());
    }

    #[test]
    fn steiner_tree_spans_all_terminals_and_validates() {
        let terminals = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 20.0),
            Point::new(40.0, 80.0),
            Point::new(90.0, 90.0),
            Point::new(10.0, 60.0),
        ];
        let tree = SteinerTree::build(&terminals);
        assert_eq!(tree.terminal_count(), terminals.len());
        assert!(tree.validate().is_ok(), "{:?}", tree.validate());
        for (i, &t) in terminals.iter().enumerate() {
            assert!(tree.nodes()[i].approx_eq(t));
        }
    }

    #[test]
    fn steiner_wirelength_never_exceeds_mst() {
        let cases: Vec<Vec<Point>> = vec![
            vec![
                Point::new(0.0, 1.0),
                Point::new(2.0, 1.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 2.0),
            ],
            vec![
                Point::new(0.0, 0.0),
                Point::new(50.0, 10.0),
                Point::new(25.0, 70.0),
                Point::new(80.0, 40.0),
                Point::new(60.0, 90.0),
                Point::new(5.0, 45.0),
            ],
        ];
        for terminals in cases {
            let mst = edge_list_length(&terminals, &rectilinear_mst(&terminals));
            let steiner = SteinerTree::build(&terminals);
            assert!(steiner.validate().is_ok());
            assert!(
                steiner.wirelength() <= mst + 1e-9,
                "steiner {} vs mst {}",
                steiner.wirelength(),
                mst
            );
            assert!(steiner.wirelength() + 1e-9 >= half_perimeter_wirelength(&terminals));
        }
    }

    #[test]
    fn plus_configuration_benefits_from_steiner_points() {
        // Four arms of a plus: the optimal Steiner tree uses the centre,
        // saving length over the MST.
        let terminals = vec![
            Point::new(1.0, 0.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 1.0),
            Point::new(2.0, 1.0),
        ];
        let mst = edge_list_length(&terminals, &rectilinear_mst(&terminals));
        let steiner = SteinerTree::build(&terminals);
        assert!(steiner.wirelength() < mst - 0.5);
        assert!(steiner.steiner_count() >= 1);
        assert!((steiner.wirelength() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn single_terminal_tree_is_empty() {
        let tree = SteinerTree::build(&[Point::new(3.0, 4.0)]);
        assert_eq!(tree.terminal_count(), 1);
        assert_eq!(tree.steiner_count(), 0);
        assert!(tree.edges().is_empty());
        assert_eq!(tree.wirelength(), 0.0);
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn hpwl_is_a_lower_bound() {
        let terminals = vec![
            Point::new(0.0, 0.0),
            Point::new(30.0, 40.0),
            Point::new(10.0, 25.0),
        ];
        let hpwl = half_perimeter_wirelength(&terminals);
        assert!((hpwl - 70.0).abs() < 1e-9);
        let tree = SteinerTree::build(&terminals);
        assert!(tree.wirelength() + 1e-9 >= hpwl);
        assert_eq!(half_perimeter_wirelength(&[Point::new(1.0, 1.0)]), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one terminal")]
    fn empty_terminal_set_is_rejected() {
        let _ = SteinerTree::build(&[]);
    }
}
