//! Rectilinear wire segments.

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A straight wire segment between two points.
///
/// Segments produced by the clock-tree flow are horizontal or vertical;
/// a general segment is still representable (its Manhattan length is used),
/// which is convenient for "diagonal" connections that have not yet been
/// decomposed into an [`crate::LShape`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from its endpoints.
    pub fn new(a: Point, b: Point) -> Self {
        Self { a, b }
    }

    /// Manhattan length of the segment in micrometres.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.manhattan(self.b)
    }

    /// Returns `true` when the segment is horizontal (within tolerance).
    #[inline]
    pub fn is_horizontal(&self) -> bool {
        crate::approx_eq(self.a.y, self.b.y)
    }

    /// Returns `true` when the segment is vertical (within tolerance).
    #[inline]
    pub fn is_vertical(&self) -> bool {
        crate::approx_eq(self.a.x, self.b.x)
    }

    /// Returns `true` when the segment is axis-aligned.
    #[inline]
    pub fn is_rectilinear(&self) -> bool {
        self.is_horizontal() || self.is_vertical()
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Axis-aligned bounding box of the segment.
    pub fn bounding_box(&self) -> Rect {
        Rect::from_points(self.a, self.b)
    }

    /// Returns `true` if any part of the segment overlaps the rectangle.
    ///
    /// For rectilinear segments this is exact; for general (diagonal)
    /// segments the test is performed on the L-shaped lower embedding, which
    /// is conservative for obstacle detection because any embedding of the
    /// connection stays within the bounding box.
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        if self.is_rectilinear() {
            return self.bounding_box().intersects(rect);
        }
        // Diagonal connection: check the bounding box first, then both
        // L-shaped embeddings. If either embedding crosses the rectangle the
        // connection is considered to interact with the obstacle.
        if !self.bounding_box().intersects(rect) {
            return false;
        }
        let corner1 = Point::new(self.b.x, self.a.y);
        let corner2 = Point::new(self.a.x, self.b.y);
        let legs = [
            Segment::new(self.a, corner1),
            Segment::new(corner1, self.b),
            Segment::new(self.a, corner2),
            Segment::new(corner2, self.b),
        ];
        legs.iter().any(|l| l.bounding_box().intersects(rect))
    }

    /// Length of the portion of a rectilinear segment lying inside `rect`.
    ///
    /// Returns `0.0` for segments that do not cross the rectangle. For
    /// non-rectilinear segments the overlap of the bounding box diagonal is
    /// approximated by clipping both coordinates independently.
    pub fn overlap_length(&self, rect: &Rect) -> f64 {
        let bb = self.bounding_box();
        let Some(clip) = bb.intersection(rect) else {
            return 0.0;
        };
        if self.is_horizontal() {
            clip.width()
        } else if self.is_vertical() {
            clip.height()
        } else {
            clip.width() + clip.height()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_is_manhattan() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(s.length(), 7.0);
    }

    #[test]
    fn orientation_checks() {
        let h = Segment::new(Point::new(0.0, 1.0), Point::new(5.0, 1.0));
        let v = Segment::new(Point::new(2.0, 0.0), Point::new(2.0, 9.0));
        let d = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert!(h.is_horizontal() && h.is_rectilinear());
        assert!(v.is_vertical() && v.is_rectilinear());
        assert!(!d.is_rectilinear());
    }

    #[test]
    fn rect_intersection_horizontal() {
        let s = Segment::new(Point::new(0.0, 5.0), Point::new(20.0, 5.0));
        let hit = Rect::new(8.0, 0.0, 12.0, 10.0);
        let miss = Rect::new(8.0, 6.0, 12.0, 10.0);
        assert!(s.intersects_rect(&hit));
        assert!(!s.intersects_rect(&miss));
        assert_eq!(s.overlap_length(&hit), 4.0);
        assert_eq!(s.overlap_length(&miss), 0.0);
    }

    #[test]
    fn rect_intersection_diagonal_uses_embeddings() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        // A vertical band across the whole bounding box is hit by both
        // L-shaped embeddings of the connection.
        let band = Rect::new(4.0, -1.0, 6.0, 11.0);
        // A small box in the middle of the bounding box is avoided by both
        // embeddings, so the connection does not interact with it.
        let central = Rect::new(4.0, 4.0, 6.0, 6.0);
        let outside = Rect::new(40.0, 40.0, 50.0, 50.0);
        assert!(s.intersects_rect(&band));
        assert!(!s.intersects_rect(&central));
        assert!(!s.intersects_rect(&outside));
    }

    #[test]
    fn point_at_parameter() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert!(s.point_at(0.25).approx_eq(Point::new(2.5, 0.0)));
    }
}
