//! Tilted rectangular regions (TRRs) and Manhattan arcs for DME.
//!
//! Deferred-merge embedding manipulates *merging segments*: sets of points
//! that are equidistant (in the Manhattan metric) from two subtrees. Those
//! sets are segments of slope ±1, and the "balls" around them are tilted
//! rectangles. Both are conveniently represented in the rotated coordinate
//! system `u = x + y`, `v = x − y`, where the Manhattan distance becomes the
//! Chebyshev (L∞) distance and tilted rectangles become axis-aligned
//! rectangles.

use crate::Point;
use serde::{Deserialize, Serialize};

/// A tilted rectangular region (TRR): a rectangle whose sides have slope ±1
/// in layout coordinates, stored as an axis-aligned box in the rotated
/// `(u, v)` space.
///
/// Degenerate TRRs represent Manhattan arcs (one side collapsed) or single
/// points (both sides collapsed). The DME algorithm builds every merging
/// segment as the intersection of two expanded TRRs.
///
/// ```
/// use contango_geom::{Point, TiltedRect};
/// let a = TiltedRect::from_point(Point::new(0.0, 0.0));
/// let b = TiltedRect::from_point(Point::new(4.0, 2.0));
/// assert_eq!(a.distance(&b), 6.0); // Manhattan distance
/// let merged = a.expand(3.0).intersect(&b.expand(3.0)).expect("TRRs meet");
/// // Every point of the merged region is 3 away from `a` and 3 from `b`.
/// assert!(merged.distance(&a) <= 3.0 + 1e-9);
/// assert!(merged.distance(&b) <= 3.0 + 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TiltedRect {
    u_lo: f64,
    u_hi: f64,
    v_lo: f64,
    v_hi: f64,
}

impl TiltedRect {
    /// TRR consisting of a single layout point.
    pub fn from_point(p: Point) -> Self {
        Self {
            u_lo: p.u(),
            u_hi: p.u(),
            v_lo: p.v(),
            v_hi: p.v(),
        }
    }

    /// TRR spanning the Manhattan arc between two layout points.
    ///
    /// The two points are expected to lie on a common line of slope ±1; if
    /// they do not, the full tilted bounding box of the two points is
    /// returned, which is still a valid merging region.
    pub fn from_arc(a: Point, b: Point) -> Self {
        Self {
            u_lo: a.u().min(b.u()),
            u_hi: a.u().max(b.u()),
            v_lo: a.v().min(b.v()),
            v_hi: a.v().max(b.v()),
        }
    }

    /// Builds a TRR directly from rotated-coordinate intervals.
    pub fn from_uv(u_lo: f64, u_hi: f64, v_lo: f64, v_hi: f64) -> Self {
        Self {
            u_lo: u_lo.min(u_hi),
            u_hi: u_lo.max(u_hi),
            v_lo: v_lo.min(v_hi),
            v_hi: v_lo.max(v_hi),
        }
    }

    /// The rotated-coordinate intervals `(u_lo, u_hi, v_lo, v_hi)`.
    pub fn uv_bounds(&self) -> (f64, f64, f64, f64) {
        (self.u_lo, self.u_hi, self.v_lo, self.v_hi)
    }

    /// Returns `true` when the region is a single point.
    pub fn is_point(&self) -> bool {
        crate::approx_eq(self.u_lo, self.u_hi) && crate::approx_eq(self.v_lo, self.v_hi)
    }

    /// Returns `true` when the region is a Manhattan arc (degenerate in one
    /// rotated coordinate), including single points.
    pub fn is_arc(&self) -> bool {
        crate::approx_eq(self.u_lo, self.u_hi) || crate::approx_eq(self.v_lo, self.v_hi)
    }

    /// A representative point of the region (its center), in layout
    /// coordinates.
    pub fn center(&self) -> Point {
        Point::from_uv((self.u_lo + self.u_hi) * 0.5, (self.v_lo + self.v_hi) * 0.5)
    }

    /// The corner points of the region in layout coordinates. Degenerate
    /// regions repeat corners.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::from_uv(self.u_lo, self.v_lo),
            Point::from_uv(self.u_hi, self.v_lo),
            Point::from_uv(self.u_hi, self.v_hi),
            Point::from_uv(self.u_lo, self.v_hi),
        ]
    }

    /// Minkowski expansion by Manhattan radius `r ≥ 0`: every point within
    /// Manhattan distance `r` of the region.
    pub fn expand(&self, r: f64) -> TiltedRect {
        let r = r.max(0.0);
        TiltedRect {
            u_lo: self.u_lo - r,
            u_hi: self.u_hi + r,
            v_lo: self.v_lo - r,
            v_hi: self.v_hi + r,
        }
    }

    /// Intersection of two regions, or `None` when they are disjoint.
    pub fn intersect(&self, other: &TiltedRect) -> Option<TiltedRect> {
        let u_lo = self.u_lo.max(other.u_lo);
        let u_hi = self.u_hi.min(other.u_hi);
        let v_lo = self.v_lo.max(other.v_lo);
        let v_hi = self.v_hi.min(other.v_hi);
        if u_lo > u_hi + crate::GEOM_EPS || v_lo > v_hi + crate::GEOM_EPS {
            return None;
        }
        Some(TiltedRect {
            u_lo,
            u_hi: u_hi.max(u_lo),
            v_lo,
            v_hi: v_hi.max(v_lo),
        })
    }

    /// Minimum Manhattan distance between the two regions (zero when they
    /// intersect).
    pub fn distance(&self, other: &TiltedRect) -> f64 {
        let du = interval_gap(self.u_lo, self.u_hi, other.u_lo, other.u_hi);
        let dv = interval_gap(self.v_lo, self.v_hi, other.v_lo, other.v_hi);
        du.max(dv)
    }

    /// Manhattan distance from the region to a layout point.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.distance(&TiltedRect::from_point(p))
    }

    /// The point of this region closest (in Manhattan distance) to `p`.
    pub fn closest_point_to(&self, p: Point) -> Point {
        let u = p.u().clamp(self.u_lo, self.u_hi);
        let v = p.v().clamp(self.v_lo, self.v_hi);
        // The clamped (u, v) must correspond to a real layout point of the
        // region; since the region is exactly the set of (u, v) in the box,
        // any clamped pair is valid.
        Point::from_uv(u, v)
    }
}

fn interval_gap(a_lo: f64, a_hi: f64, b_lo: f64, b_hi: f64) -> f64 {
    if a_hi < b_lo {
        b_lo - a_hi
    } else if b_hi < a_lo {
        a_lo - b_hi
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_trr_distance_matches_manhattan() {
        let p = Point::new(1.0, 2.0);
        let q = Point::new(-3.0, 5.0);
        let a = TiltedRect::from_point(p);
        let b = TiltedRect::from_point(q);
        assert!(crate::approx_eq(a.distance(&b), p.manhattan(q)));
        assert!(a.is_point() && a.is_arc());
    }

    #[test]
    fn expansion_then_intersection_builds_merging_segment() {
        let a = TiltedRect::from_point(Point::new(0.0, 0.0));
        let b = TiltedRect::from_point(Point::new(10.0, 0.0));
        let d = a.distance(&b);
        let ea = 4.0;
        let eb = d - ea;
        let ms = a.expand(ea).intersect(&b.expand(eb)).expect("regions meet");
        // The merging segment is a Manhattan arc: every point is exactly ea
        // from a and eb from b.
        assert!(ms.is_arc());
        for c in ms.corners() {
            assert!(crate::approx_eq(a.distance_to_point(c), ea));
            assert!(crate::approx_eq(b.distance_to_point(c), eb));
        }
    }

    #[test]
    fn disjoint_regions_do_not_intersect() {
        let a = TiltedRect::from_point(Point::new(0.0, 0.0)).expand(1.0);
        let b = TiltedRect::from_point(Point::new(10.0, 0.0)).expand(1.0);
        assert!(a.intersect(&b).is_none());
        assert!(crate::approx_eq(a.distance(&b), 8.0));
    }

    #[test]
    fn closest_point_is_inside_and_closest() {
        let arc = TiltedRect::from_arc(Point::new(0.0, 4.0), Point::new(4.0, 0.0));
        let p = Point::new(10.0, 10.0);
        let c = arc.closest_point_to(p);
        assert!(crate::approx_eq(arc.distance_to_point(c), 0.0));
        assert!(crate::approx_eq(arc.distance_to_point(p), c.manhattan(p)));
    }

    #[test]
    fn expand_never_shrinks_for_negative_radius() {
        let a = TiltedRect::from_point(Point::new(2.0, 2.0));
        let e = a.expand(-5.0);
        assert_eq!(a, e);
    }

    #[test]
    fn center_of_point_region_is_the_point() {
        let p = Point::new(7.0, -3.0);
        assert!(TiltedRect::from_point(p).center().approx_eq(p));
    }
}
