//! Axis-aligned rectangles.

use crate::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle in the layout plane, in micrometres.
///
/// Rectangles are stored as the lower-left and upper-right corners and are
/// always normalized so that `lo.x <= hi.x` and `lo.y <= hi.y`.
///
/// ```
/// use contango_geom::{Point, Rect};
/// let r = Rect::new(0.0, 0.0, 10.0, 5.0);
/// assert_eq!(r.width(), 10.0);
/// assert_eq!(r.height(), 5.0);
/// assert!(r.contains(Point::new(3.0, 3.0)));
/// assert!(!r.contains_strict(Point::new(0.0, 3.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from corner coordinates, normalizing the corners.
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        Self {
            lo: Point::new(x1.min(x2), y1.min(y2)),
            hi: Point::new(x1.max(x2), y1.max(y2)),
        }
    }

    /// Creates a rectangle from two corner points, normalizing the corners.
    pub fn from_points(a: Point, b: Point) -> Self {
        Self::new(a.x, a.y, b.x, b.y)
    }

    /// Horizontal extent in micrometres.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Vertical extent in micrometres.
    #[inline]
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Area in square micrometres.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Perimeter length in micrometres.
    #[inline]
    pub fn perimeter(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// Geometric center of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        self.lo.midpoint(self.hi)
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Returns `true` if `p` lies strictly inside (boundary excluded by
    /// [`crate::GEOM_EPS`]).
    #[inline]
    pub fn contains_strict(&self, p: Point) -> bool {
        p.x > self.lo.x + crate::GEOM_EPS
            && p.x < self.hi.x - crate::GEOM_EPS
            && p.y > self.lo.y + crate::GEOM_EPS
            && p.y < self.hi.y - crate::GEOM_EPS
    }

    /// Returns `true` if the two rectangles share any area or boundary.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Returns `true` if the rectangles overlap with positive area or abut
    /// (share a boundary segment). Two macros that abut must be treated as a
    /// single compound obstacle because no buffer fits between them.
    #[inline]
    pub fn touches(&self, other: &Rect) -> bool {
        self.lo.x <= other.hi.x + crate::GEOM_EPS
            && other.lo.x <= self.hi.x + crate::GEOM_EPS
            && self.lo.y <= other.hi.y + crate::GEOM_EPS
            && other.lo.y <= self.hi.y + crate::GEOM_EPS
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Intersection of `self` and `other`, or `None` when they do not meet.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            lo: Point::new(self.lo.x.max(other.lo.x), self.lo.y.max(other.lo.y)),
            hi: Point::new(self.hi.x.min(other.hi.x), self.hi.y.min(other.hi.y)),
        })
    }

    /// Rectangle grown by `margin` on every side (shrunk for negative
    /// margins; collapses to a degenerate rectangle rather than inverting).
    pub fn inflate(&self, margin: f64) -> Rect {
        let lo = Point::new(self.lo.x - margin, self.lo.y - margin);
        let hi = Point::new(self.hi.x + margin, self.hi.y + margin);
        Rect {
            lo: Point::new(lo.x.min(hi.x), lo.y.min(hi.y)),
            hi: Point::new(lo.x.max(hi.x), lo.y.max(hi.y)),
        }
    }

    /// The four corner points in counter-clockwise order starting at the
    /// lower-left corner.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.lo,
            Point::new(self.hi.x, self.lo.y),
            self.hi,
            Point::new(self.lo.x, self.hi.y),
        ]
    }

    /// Manhattan distance from `p` to the closest point of the rectangle
    /// (zero when `p` is inside).
    pub fn manhattan_distance_to(&self, p: Point) -> f64 {
        let dx = if p.x < self.lo.x {
            self.lo.x - p.x
        } else if p.x > self.hi.x {
            p.x - self.hi.x
        } else {
            0.0
        };
        let dy = if p.y < self.lo.y {
            self.lo.y - p.y
        } else if p.y > self.hi.y {
            p.y - self.hi.y
        } else {
            0.0
        };
        dx + dy
    }

    /// Closest point of the rectangle to `p` (equal to `p` when inside).
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.lo.x, self.hi.x),
            p.y.clamp(self.lo.y, self.hi.y),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} – {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(10.0, 8.0, 2.0, 1.0);
        assert_eq!(r.lo, Point::new(2.0, 1.0));
        assert_eq!(r.hi, Point::new(10.0, 8.0));
    }

    #[test]
    fn contains_boundary_and_interior() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(4.0, 4.0)));
        assert!(r.contains(Point::new(2.0, 2.0)));
        assert!(!r.contains(Point::new(4.1, 2.0)));
        assert!(!r.contains_strict(Point::new(0.0, 2.0)));
        assert!(r.contains_strict(Point::new(2.0, 2.0)));
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(0.0, 0.0, 4.0, 4.0);
        let b = Rect::new(2.0, 2.0, 6.0, 6.0);
        let i = a.intersection(&b).expect("rectangles overlap");
        assert_eq!(i, Rect::new(2.0, 2.0, 4.0, 4.0));
        assert_eq!(a.union(&b), Rect::new(0.0, 0.0, 6.0, 6.0));

        let c = Rect::new(10.0, 10.0, 12.0, 12.0);
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn touching_rectangles_abut_but_do_not_overlap_area() {
        let a = Rect::new(0.0, 0.0, 4.0, 4.0);
        let b = Rect::new(4.0, 0.0, 8.0, 4.0);
        assert!(a.touches(&b));
        assert!(a.intersects(&b));
        let i = a.intersection(&b).expect("boundary intersection");
        assert_eq!(i.area(), 0.0);
    }

    #[test]
    fn manhattan_distance_to_point() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        assert_eq!(r.manhattan_distance_to(Point::new(2.0, 2.0)), 0.0);
        assert_eq!(r.manhattan_distance_to(Point::new(6.0, 2.0)), 2.0);
        assert_eq!(r.manhattan_distance_to(Point::new(6.0, 7.0)), 5.0);
    }

    #[test]
    fn corners_are_counter_clockwise() {
        let r = Rect::new(0.0, 0.0, 2.0, 1.0);
        let c = r.corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[1], Point::new(2.0, 0.0));
        assert_eq!(c[2], Point::new(2.0, 1.0));
        assert_eq!(c[3], Point::new(0.0, 1.0));
    }

    #[test]
    fn inflate_grows_every_side() {
        let r = Rect::new(1.0, 1.0, 3.0, 3.0).inflate(0.5);
        assert_eq!(r, Rect::new(0.5, 0.5, 3.5, 3.5));
    }

    #[test]
    fn perimeter_and_area() {
        let r = Rect::new(0.0, 0.0, 3.0, 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.perimeter(), 14.0);
    }
}
