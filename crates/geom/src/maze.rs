//! Shortest rectilinear obstacle-avoiding point-to-point routing.
//!
//! Contango repairs obstacle violations in the initial zero-skew tree by
//! maze-routing individual point-to-point connections around obstacles
//! (paper, Section IV-A, Step 1). The router here works on an *escape
//! graph*: the Hanan-style grid induced by the endpoints and the corners of
//! (slightly inflated) obstacle rectangles. Shortest paths on the escape
//! graph are optimal among rectilinear obstacle-avoiding paths for
//! point-to-point connections.

use crate::{Point, Rect, Segment};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// A rectilinear routed path: an ordered polyline of bend points from the
/// source to the destination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutePath {
    points: Vec<Point>,
}

impl RoutePath {
    /// Creates a path from bend points. At least two points are required.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(points.len() >= 2, "a route needs at least two points");
        Self { points }
    }

    /// Bend points from source to destination.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The source endpoint.
    pub fn source(&self) -> Point {
        self.points[0]
    }

    /// The destination endpoint.
    pub fn target(&self) -> Point {
        *self.points.last().expect("non-empty route")
    }

    /// Total Manhattan length of the path.
    pub fn length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].manhattan(w[1])).sum()
    }

    /// The individual segments of the path.
    pub fn segments(&self) -> Vec<Segment> {
        self.points
            .windows(2)
            .map(|w| Segment::new(w[0], w[1]))
            .collect()
    }
}

/// Shortest-path maze router over an escape graph built from obstacle
/// corners.
///
/// Obstacles block *routing through their strict interior*. Paths may run
/// along obstacle boundaries, matching the contest rule that wires may cross
/// blockages but the detour machinery keeps them outside whenever the
/// enclosed subtree is too capacitive to be driven across.
///
/// ```
/// use contango_geom::{MazeRouter, Point, Rect};
/// let router = MazeRouter::new(vec![Rect::new(2.0, -10.0, 4.0, 10.0)]);
/// let path = router
///     .route(Point::new(0.0, 0.0), Point::new(6.0, 0.0))
///     .expect("route exists");
/// // Straight-line distance is 6 but the wall forces a detour around y=±10.
/// assert!(path.length() >= 6.0);
/// ```
#[derive(Debug, Clone)]
pub struct MazeRouter {
    blocked: Vec<Rect>,
}

impl MazeRouter {
    /// Creates a router that avoids the strict interiors of `blocked`.
    pub fn new(blocked: Vec<Rect>) -> Self {
        Self { blocked }
    }

    /// The blocked rectangles.
    pub fn blocked(&self) -> &[Rect] {
        &self.blocked
    }

    /// Routes from `from` to `to`, returning the shortest rectilinear path
    /// that does not pass through the strict interior of any blocked
    /// rectangle, or `None` if the endpoints themselves are strictly inside
    /// a blockage (no legal escape).
    pub fn route(&self, from: Point, to: Point) -> Option<RoutePath> {
        if self.point_blocked(from) || self.point_blocked(to) {
            return None;
        }
        // Fast path: the direct L-shape is legal.
        if let Some(path) = self.legal_lshape(from, to) {
            return Some(path);
        }

        let (xs, ys) = self.grid_coordinates(from, to);
        let nx = xs.len();
        let ny = ys.len();
        let idx = |ix: usize, iy: usize| iy * nx + ix;

        let find_index = |vals: &[f64], v: f64| -> usize {
            vals.iter()
                .position(|&c| crate::approx_eq(c, v))
                .expect("endpoint coordinate present in grid")
        };
        let start = idx(find_index(&xs, from.x), find_index(&ys, from.y));
        let goal = idx(find_index(&xs, to.x), find_index(&ys, to.y));

        // Dijkstra over the escape grid.
        let mut dist = vec![f64::INFINITY; nx * ny];
        let mut prev = vec![usize::MAX; nx * ny];
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        dist[start] = 0.0;
        heap.push(HeapEntry {
            cost: 0.0,
            node: start,
        });

        while let Some(HeapEntry { cost, node }) = heap.pop() {
            if cost > dist[node] + crate::GEOM_EPS {
                continue;
            }
            if node == goal {
                break;
            }
            let ix = node % nx;
            let iy = node / nx;
            let here = Point::new(xs[ix], ys[iy]);
            let mut neighbors: Vec<(usize, Point)> = Vec::with_capacity(4);
            if ix > 0 {
                neighbors.push((idx(ix - 1, iy), Point::new(xs[ix - 1], ys[iy])));
            }
            if ix + 1 < nx {
                neighbors.push((idx(ix + 1, iy), Point::new(xs[ix + 1], ys[iy])));
            }
            if iy > 0 {
                neighbors.push((idx(ix, iy - 1), Point::new(xs[ix], ys[iy - 1])));
            }
            if iy + 1 < ny {
                neighbors.push((idx(ix, iy + 1), Point::new(xs[ix], ys[iy + 1])));
            }
            for (nnode, npoint) in neighbors {
                if self.edge_blocked(here, npoint) {
                    continue;
                }
                let ncost = cost + here.manhattan(npoint);
                if ncost + crate::GEOM_EPS < dist[nnode] {
                    dist[nnode] = ncost;
                    prev[nnode] = node;
                    heap.push(HeapEntry {
                        cost: ncost,
                        node: nnode,
                    });
                }
            }
        }

        if dist[goal].is_infinite() {
            return None;
        }

        // Reconstruct and simplify.
        let mut rev = vec![goal];
        let mut cur = goal;
        while cur != start {
            cur = prev[cur];
            rev.push(cur);
        }
        rev.reverse();
        let pts: Vec<Point> = rev
            .into_iter()
            .map(|n| Point::new(xs[n % nx], ys[n / nx]))
            .collect();
        Some(RoutePath::new(simplify_collinear(&pts)))
    }

    /// Returns `true` when `p` lies strictly inside a blockage.
    fn point_blocked(&self, p: Point) -> bool {
        self.blocked.iter().any(|r| r.contains_strict(p))
    }

    /// Returns `true` when the axis-aligned edge between two grid points
    /// passes through the strict interior of a blockage.
    fn edge_blocked(&self, a: Point, b: Point) -> bool {
        let mid = a.midpoint(b);
        self.blocked.iter().any(|r| {
            r.contains_strict(mid)
                || (r.contains_strict(a.lerp(b, 0.25)) || r.contains_strict(a.lerp(b, 0.75)))
        })
    }

    /// Returns the direct L-shaped connection when one of the two
    /// embeddings avoids all blockage interiors.
    fn legal_lshape(&self, from: Point, to: Point) -> Option<RoutePath> {
        for corner in [Point::new(to.x, from.y), Point::new(from.x, to.y)] {
            let legs = [Segment::new(from, corner), Segment::new(corner, to)];
            let blocked = legs.iter().any(|leg| {
                self.blocked
                    .iter()
                    .any(|r| segment_through_interior(leg, r))
            });
            if !blocked {
                let pts = if corner.approx_eq(from) || corner.approx_eq(to) {
                    vec![from, to]
                } else {
                    vec![from, corner, to]
                };
                return Some(RoutePath::new(simplify_collinear(&pts)));
            }
        }
        None
    }

    /// Builds the escape-grid coordinates from endpoints and obstacle
    /// corners.
    fn grid_coordinates(&self, from: Point, to: Point) -> (Vec<f64>, Vec<f64>) {
        let mut xs = vec![from.x, to.x];
        let mut ys = vec![from.y, to.y];
        for r in &self.blocked {
            xs.push(r.lo.x);
            xs.push(r.hi.x);
            ys.push(r.lo.y);
            ys.push(r.hi.y);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        xs.dedup_by(|a, b| crate::approx_eq(*a, *b));
        ys.dedup_by(|a, b| crate::approx_eq(*a, *b));
        (xs, ys)
    }
}

/// Returns `true` when the rectilinear segment passes through the strict
/// interior of `rect` (running along the boundary is allowed).
fn segment_through_interior(seg: &Segment, rect: &Rect) -> bool {
    if seg.length() <= crate::GEOM_EPS {
        return false;
    }
    // Sample interior points of the segment; for axis-aligned segments and
    // axis-aligned rectangles, the midpoint of the clipped portion is inside
    // the interior iff the segment truly crosses it.
    let bb = seg.bounding_box();
    let Some(clip) = bb.intersection(rect) else {
        return false;
    };
    if seg.is_horizontal() {
        clip.width() > crate::GEOM_EPS
            && seg.a.y > rect.lo.y + crate::GEOM_EPS
            && seg.a.y < rect.hi.y - crate::GEOM_EPS
    } else if seg.is_vertical() {
        clip.height() > crate::GEOM_EPS
            && seg.a.x > rect.lo.x + crate::GEOM_EPS
            && seg.a.x < rect.hi.x - crate::GEOM_EPS
    } else {
        // Conservative for non-rectilinear segments.
        clip.area() > crate::GEOM_EPS
    }
}

/// Removes collinear intermediate points from a polyline.
fn simplify_collinear(points: &[Point]) -> Vec<Point> {
    if points.len() <= 2 {
        return points.to_vec();
    }
    let mut out = vec![points[0]];
    for i in 1..points.len() - 1 {
        let prev = *out.last().expect("non-empty");
        let cur = points[i];
        let next = points[i + 1];
        let collinear_x = crate::approx_eq(prev.x, cur.x) && crate::approx_eq(cur.x, next.x);
        let collinear_y = crate::approx_eq(prev.y, cur.y) && crate::approx_eq(cur.y, next.y);
        if !(collinear_x || collinear_y || cur.approx_eq(prev)) {
            out.push(cur);
        }
    }
    let last = *points.last().expect("non-empty");
    if !out.last().expect("non-empty").approx_eq(last) {
        out.push(last);
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unobstructed_route_is_manhattan_optimal() {
        let router = MazeRouter::new(vec![]);
        let path = router
            .route(Point::new(0.0, 0.0), Point::new(10.0, 7.0))
            .expect("route exists");
        assert!(crate::approx_eq(path.length(), 17.0));
        assert_eq!(path.source(), Point::new(0.0, 0.0));
        assert_eq!(path.target(), Point::new(10.0, 7.0));
    }

    #[test]
    fn route_around_a_wall_detours() {
        // Tall thin wall between the endpoints.
        let wall = Rect::new(4.0, -20.0, 6.0, 20.0);
        let router = MazeRouter::new(vec![wall]);
        let path = router
            .route(Point::new(0.0, 0.0), Point::new(10.0, 0.0))
            .expect("route exists");
        // Must go around the top (y=20) or bottom (y=-20): 10 + 2*20 = 50.
        assert!(crate::approx_eq(path.length(), 50.0));
        // And never pass strictly inside the wall.
        for seg in path.segments() {
            assert!(!segment_through_interior(&seg, &wall));
        }
    }

    #[test]
    fn route_prefers_direct_lshape_when_legal() {
        let router = MazeRouter::new(vec![Rect::new(100.0, 100.0, 110.0, 110.0)]);
        let path = router
            .route(Point::new(0.0, 0.0), Point::new(5.0, 5.0))
            .expect("route exists");
        assert!(crate::approx_eq(path.length(), 10.0));
        assert!(path.points().len() <= 3);
    }

    #[test]
    fn blocked_endpoint_yields_none() {
        let router = MazeRouter::new(vec![Rect::new(0.0, 0.0, 10.0, 10.0)]);
        assert!(router
            .route(Point::new(5.0, 5.0), Point::new(20.0, 20.0))
            .is_none());
    }

    #[test]
    fn boundary_running_is_allowed() {
        // Endpoints on the obstacle boundary are legal.
        let router = MazeRouter::new(vec![Rect::new(0.0, 0.0, 10.0, 10.0)]);
        let path = router
            .route(Point::new(0.0, 10.0), Point::new(10.0, 10.0))
            .expect("boundary route");
        assert!(crate::approx_eq(path.length(), 10.0));
    }

    #[test]
    fn multiple_obstacles_route_through_gap() {
        let router = MazeRouter::new(vec![
            Rect::new(4.0, -30.0, 6.0, -2.0),
            Rect::new(4.0, 2.0, 6.0, 30.0),
        ]);
        let path = router
            .route(Point::new(0.0, 0.0), Point::new(10.0, 0.0))
            .expect("route exists");
        // A gap exists between y=-2 and y=2 at x in [4,6]; direct path legal.
        assert!(crate::approx_eq(path.length(), 10.0));
    }

    #[test]
    fn route_path_segments_cover_length() {
        let path = RoutePath::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
        ]);
        let total: f64 = path.segments().iter().map(Segment::length).sum();
        assert!(crate::approx_eq(total, path.length()));
        assert!(crate::approx_eq(total, 7.0));
    }
}
