//! L-shaped embeddings of diagonal connections.

use crate::{Point, Rect, Segment};
use serde::{Deserialize, Serialize};

/// Which corner an L-shaped embedding bends through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LOrientation {
    /// Horizontal leg first (from the source), then vertical leg.
    HorizontalFirst,
    /// Vertical leg first (from the source), then horizontal leg.
    VerticalFirst,
}

/// An L-shaped rectilinear connection between two points.
///
/// A connection between points that differ in both coordinates has exactly
/// two minimum-length rectilinear embeddings; Contango chooses the one that
/// minimizes overlap with obstacles (paper, Section IV-A, Step 1).
///
/// ```
/// use contango_geom::{LShape, LOrientation, Point, Rect};
/// let obstacle = Rect::new(4.0, 0.0, 10.0, 4.0);
/// let l = LShape::best_avoiding(
///     Point::new(0.0, 0.0),
///     Point::new(8.0, 8.0),
///     &[obstacle],
/// );
/// // The vertical-first embedding only clips the obstacle corner.
/// assert_eq!(l.orientation(), LOrientation::VerticalFirst);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LShape {
    from: Point,
    to: Point,
    orientation: LOrientation,
}

impl LShape {
    /// Creates an L-shape with an explicit orientation.
    pub fn new(from: Point, to: Point, orientation: LOrientation) -> Self {
        Self {
            from,
            to,
            orientation,
        }
    }

    /// Source endpoint.
    pub fn from(&self) -> Point {
        self.from
    }

    /// Destination endpoint.
    pub fn to(&self) -> Point {
        self.to
    }

    /// Chosen bend orientation.
    pub fn orientation(&self) -> LOrientation {
        self.orientation
    }

    /// The bend (corner) point of the embedding.
    pub fn corner(&self) -> Point {
        match self.orientation {
            LOrientation::HorizontalFirst => Point::new(self.to.x, self.from.y),
            LOrientation::VerticalFirst => Point::new(self.from.x, self.to.y),
        }
    }

    /// The two legs of the embedding, ordered from source to destination.
    ///
    /// Degenerate legs (zero length) are still returned so callers can rely
    /// on always receiving two segments.
    pub fn legs(&self) -> [Segment; 2] {
        let c = self.corner();
        [Segment::new(self.from, c), Segment::new(c, self.to)]
    }

    /// Total wirelength of the embedding (equals the Manhattan distance).
    pub fn length(&self) -> f64 {
        self.from.manhattan(self.to)
    }

    /// Total length of the embedding overlapping any of `obstacles`.
    pub fn overlap_with(&self, obstacles: &[Rect]) -> f64 {
        self.legs()
            .iter()
            .map(|leg| obstacles.iter().map(|r| leg.overlap_length(r)).sum::<f64>())
            .sum()
    }

    /// Chooses, between the two possible embeddings, the one with the
    /// smaller total overlap with `obstacles`; ties prefer horizontal-first.
    pub fn best_avoiding(from: Point, to: Point, obstacles: &[Rect]) -> LShape {
        let h = LShape::new(from, to, LOrientation::HorizontalFirst);
        let v = LShape::new(from, to, LOrientation::VerticalFirst);
        if v.overlap_with(obstacles) + crate::GEOM_EPS < h.overlap_with(obstacles) {
            v
        } else {
            h
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_depends_on_orientation() {
        let from = Point::new(0.0, 0.0);
        let to = Point::new(4.0, 6.0);
        let h = LShape::new(from, to, LOrientation::HorizontalFirst);
        let v = LShape::new(from, to, LOrientation::VerticalFirst);
        assert_eq!(h.corner(), Point::new(4.0, 0.0));
        assert_eq!(v.corner(), Point::new(0.0, 6.0));
        assert_eq!(h.length(), 10.0);
        assert_eq!(v.length(), 10.0);
    }

    #[test]
    fn legs_connect_from_to() {
        let l = LShape::new(
            Point::new(1.0, 1.0),
            Point::new(5.0, 7.0),
            LOrientation::HorizontalFirst,
        );
        let [first, second] = l.legs();
        assert_eq!(first.a, l.from());
        assert_eq!(second.b, l.to());
        assert!(first.b.approx_eq(second.a));
        assert!(crate::approx_eq(
            first.length() + second.length(),
            l.length()
        ));
    }

    #[test]
    fn best_avoiding_picks_lower_overlap() {
        // Obstacle sits on the horizontal-first path only.
        let obstacle = Rect::new(2.0, -1.0, 6.0, 1.0);
        let l = LShape::best_avoiding(Point::new(0.0, 0.0), Point::new(8.0, 8.0), &[obstacle]);
        assert_eq!(l.orientation(), LOrientation::VerticalFirst);
    }

    #[test]
    fn best_avoiding_prefers_horizontal_on_tie() {
        let l = LShape::best_avoiding(Point::new(0.0, 0.0), Point::new(8.0, 8.0), &[]);
        assert_eq!(l.orientation(), LOrientation::HorizontalFirst);
    }

    #[test]
    fn degenerate_connection_has_zero_length_leg() {
        let l = LShape::new(
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            LOrientation::HorizontalFirst,
        );
        let [first, second] = l.legs();
        assert_eq!(first.length(), 5.0);
        assert_eq!(second.length(), 0.0);
    }
}
