//! Placement obstacles and compound-obstacle handling.
//!
//! SoC floorplans contain pre-designed blocks (CPUs, RAMs, DSPs, …) over
//! which clock wires may be routed but on which buffers cannot be placed.
//! When two blocks abut, no buffer fits between them either, so abutting or
//! overlapping rectangles are merged into a single [`CompoundObstacle`]
//! whose outer contour is used for wire detours (paper, Section IV-A).

use crate::{Point, Rect, Segment};
use serde::{Deserialize, Serialize};

/// A single rectangular placement blockage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obstacle {
    /// Blocked area. Routing over it is allowed; buffer placement is not.
    pub rect: Rect,
}

impl Obstacle {
    /// Creates an obstacle covering `rect`.
    pub fn new(rect: Rect) -> Self {
        Self { rect }
    }
}

impl From<Rect> for Obstacle {
    fn from(rect: Rect) -> Self {
        Obstacle::new(rect)
    }
}

/// A maximal group of mutually abutting/overlapping obstacles, handled as a
/// single blockage for buffer placement and detouring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompoundObstacle {
    rects: Vec<Rect>,
    bounding_box: Rect,
}

impl CompoundObstacle {
    /// Creates a compound obstacle from member rectangles.
    ///
    /// # Panics
    ///
    /// Panics if `rects` is empty; a compound obstacle always has at least
    /// one member.
    pub fn new(rects: Vec<Rect>) -> Self {
        assert!(!rects.is_empty(), "compound obstacle must not be empty");
        let bounding_box = rects.iter().skip(1).fold(rects[0], |acc, r| acc.union(r));
        Self {
            rects,
            bounding_box,
        }
    }

    /// Member rectangles of the compound.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Axis-aligned bounding box of the compound.
    pub fn bounding_box(&self) -> Rect {
        self.bounding_box
    }

    /// Returns `true` when `p` lies inside (or on the boundary of) any
    /// member rectangle.
    pub fn contains_point(&self, p: Point) -> bool {
        self.rects.iter().any(|r| r.contains(p))
    }

    /// Returns `true` when `p` lies strictly inside any member rectangle.
    pub fn contains_point_strict(&self, p: Point) -> bool {
        self.rects.iter().any(|r| r.contains_strict(p))
    }

    /// Returns `true` when the segment crosses any member rectangle.
    pub fn intersects_segment(&self, seg: &Segment) -> bool {
        if !seg.bounding_box().intersects(&self.bounding_box) {
            return false;
        }
        self.rects.iter().any(|r| seg.intersects_rect(r))
    }

    /// The outer contour of the compound obstacle as a closed rectilinear
    /// polygon (counter-clockwise, first point not repeated at the end).
    ///
    /// For compounds whose vertical cross-section is a single interval at
    /// every x (the common case of abutting macro rows) the exact union
    /// contour is returned. Otherwise the method conservatively falls back
    /// to the bounding-box contour, which still avoids the entire compound.
    pub fn contour(&self) -> Vec<Point> {
        if self.rects.len() == 1 {
            return self.rects[0].corners().to_vec();
        }
        match self.column_profile_contour() {
            Some(c) => c,
            None => self.bounding_box.corners().to_vec(),
        }
    }

    /// Total contour length in micrometres.
    pub fn contour_length(&self) -> f64 {
        let pts = self.contour();
        perimeter_of(&pts)
    }

    /// Attempts the exact union contour via an x-sweep column profile.
    ///
    /// Returns `None` when any column of the union consists of more than one
    /// disjoint y-interval (e.g. a U-shaped compound), in which case the
    /// caller falls back to the bounding box.
    fn column_profile_contour(&self) -> Option<Vec<Point>> {
        let mut xs: Vec<f64> = Vec::with_capacity(self.rects.len() * 2);
        for r in &self.rects {
            xs.push(r.lo.x);
            xs.push(r.hi.x);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        xs.dedup_by(|a, b| crate::approx_eq(*a, *b));
        if xs.len() < 2 {
            return None;
        }

        // For each column (interval between consecutive x cuts), the union of
        // member y-intervals must be a single interval.
        let mut lower: Vec<(f64, f64, f64)> = Vec::new(); // (x_lo, x_hi, y)
        let mut upper: Vec<(f64, f64, f64)> = Vec::new();
        for w in xs.windows(2) {
            let (x_lo, x_hi) = (w[0], w[1]);
            let x_mid = 0.5 * (x_lo + x_hi);
            let mut intervals: Vec<(f64, f64)> = self
                .rects
                .iter()
                .filter(|r| r.lo.x <= x_mid && x_mid <= r.hi.x)
                .map(|r| (r.lo.y, r.hi.y))
                .collect();
            if intervals.is_empty() {
                // A gap in x splits the compound; it should not have been
                // grouped together, treat conservatively.
                return None;
            }
            intervals.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
            let mut merged = intervals[0];
            for &(lo, hi) in &intervals[1..] {
                if lo <= merged.1 + crate::GEOM_EPS {
                    merged.1 = merged.1.max(hi);
                } else {
                    return None; // disjoint y coverage in this column
                }
            }
            lower.push((x_lo, x_hi, merged.0));
            upper.push((x_lo, x_hi, merged.1));
        }

        // Walk the lower profile left-to-right, then the upper profile
        // right-to-left, to produce a counter-clockwise rectilinear polygon.
        let mut contour: Vec<Point> = Vec::new();
        let push = |p: Point, contour: &mut Vec<Point>| {
            if contour.last().is_none_or(|last| !last.approx_eq(p)) {
                contour.push(p);
            }
        };
        for &(x_lo, x_hi, y) in &lower {
            push(Point::new(x_lo, y), &mut contour);
            push(Point::new(x_hi, y), &mut contour);
        }
        for &(x_lo, x_hi, y) in upper.iter().rev() {
            push(Point::new(x_hi, y), &mut contour);
            push(Point::new(x_lo, y), &mut contour);
        }
        // Remove a trailing point equal to the first (polygon is implicitly
        // closed) and collinear repetitions.
        if contour.len() > 1 && contour[0].approx_eq(*contour.last().expect("non-empty")) {
            contour.pop();
        }
        Some(simplify_rectilinear(&contour))
    }
}

/// Removes collinear intermediate vertices from a rectilinear polygon.
fn simplify_rectilinear(points: &[Point]) -> Vec<Point> {
    if points.len() <= 2 {
        return points.to_vec();
    }
    let n = points.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let prev = points[(i + n - 1) % n];
        let cur = points[i];
        let next = points[(i + 1) % n];
        let collinear_x = crate::approx_eq(prev.x, cur.x) && crate::approx_eq(cur.x, next.x);
        let collinear_y = crate::approx_eq(prev.y, cur.y) && crate::approx_eq(cur.y, next.y);
        if !(collinear_x || collinear_y) {
            out.push(cur);
        }
    }
    out
}

/// Perimeter length of a closed polygon given by its vertices.
fn perimeter_of(points: &[Point]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..points.len() {
        let a = points[i];
        let b = points[(i + 1) % points.len()];
        total += a.manhattan(b);
    }
    total
}

/// A collection of obstacles with compound grouping.
///
/// ```
/// use contango_geom::{Obstacle, ObstacleSet, Point, Rect};
/// let mut set = ObstacleSet::new();
/// set.push(Obstacle::new(Rect::new(0.0, 0.0, 10.0, 10.0)));
/// set.push(Obstacle::new(Rect::new(10.0, 0.0, 20.0, 10.0))); // abuts the first
/// set.push(Obstacle::new(Rect::new(50.0, 50.0, 60.0, 60.0)));
/// set.rebuild();
/// assert_eq!(set.compounds().len(), 2);
/// assert!(set.contains_point(Point::new(15.0, 5.0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObstacleSet {
    obstacles: Vec<Obstacle>,
    #[serde(skip)]
    compounds: Vec<CompoundObstacle>,
    #[serde(skip)]
    dirty: bool,
}

impl ObstacleSet {
    /// Creates an empty obstacle set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an obstacle set from rectangles.
    pub fn from_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Self {
        let mut set = Self::new();
        for r in rects {
            set.push(Obstacle::new(r));
        }
        set
    }

    /// Adds an obstacle. Compound grouping is recomputed lazily.
    pub fn push(&mut self, obstacle: Obstacle) {
        self.obstacles.push(obstacle);
        self.dirty = true;
    }

    /// Number of individual obstacles.
    pub fn len(&self) -> usize {
        self.obstacles.len()
    }

    /// Returns `true` when the set contains no obstacles.
    pub fn is_empty(&self) -> bool {
        self.obstacles.is_empty()
    }

    /// Iterates over the individual obstacles.
    pub fn iter(&self) -> impl Iterator<Item = &Obstacle> {
        self.obstacles.iter()
    }

    /// The individual obstacle rectangles.
    pub fn rects(&self) -> Vec<Rect> {
        self.obstacles.iter().map(|o| o.rect).collect()
    }

    /// The compound obstacles (maximal groups of touching rectangles).
    ///
    /// [`ObstacleSet::rebuild`] must be called after the last mutation;
    /// the `FromIterator`/`Extend` constructors do this automatically.
    pub fn compounds(&self) -> &[CompoundObstacle] {
        debug_assert!(
            !self.dirty,
            "ObstacleSet::rebuild must be called after mutations before querying compounds"
        );
        &self.compounds
    }

    /// Recomputes compound grouping. Must be called after the last `push`
    /// and before read-only queries; all higher-level constructors in this
    /// workspace call it automatically.
    pub fn rebuild(&mut self) {
        self.compounds = group_touching(&self.obstacles);
        self.dirty = false;
    }

    /// Returns `true` when `p` lies inside (or on the boundary of) any
    /// obstacle.
    pub fn contains_point(&self, p: Point) -> bool {
        self.obstacles.iter().any(|o| o.rect.contains(p))
    }

    /// Returns `true` when `p` lies strictly inside any obstacle; points on
    /// obstacle boundaries are legal buffer locations.
    pub fn contains_point_strict(&self, p: Point) -> bool {
        self.obstacles.iter().any(|o| o.rect.contains_strict(p))
    }

    /// Returns `true` when the segment crosses any obstacle.
    pub fn intersects_segment(&self, seg: &Segment) -> bool {
        self.obstacles.iter().any(|o| seg.intersects_rect(&o.rect))
    }

    /// Indices of compounds crossed by the segment. `rebuild` must have been
    /// called after the last mutation.
    pub fn compounds_crossed_by(&self, seg: &Segment) -> Vec<usize> {
        self.compounds
            .iter()
            .enumerate()
            .filter(|(_, c)| c.intersects_segment(seg))
            .map(|(i, _)| i)
            .collect()
    }
}

impl FromIterator<Rect> for ObstacleSet {
    fn from_iter<T: IntoIterator<Item = Rect>>(iter: T) -> Self {
        let mut set = ObstacleSet::from_rects(iter);
        set.rebuild();
        set
    }
}

impl Extend<Rect> for ObstacleSet {
    fn extend<T: IntoIterator<Item = Rect>>(&mut self, iter: T) {
        for r in iter {
            self.push(Obstacle::new(r));
        }
        self.rebuild();
    }
}

/// Groups touching rectangles into compound obstacles using union-find.
fn group_touching(obstacles: &[Obstacle]) -> Vec<CompoundObstacle> {
    let n = obstacles.len();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }

    for i in 0..n {
        for j in (i + 1)..n {
            if obstacles[i].rect.touches(&obstacles[j].rect) {
                let ri = find(&mut parent, i);
                let rj = find(&mut parent, j);
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }

    let mut groups: std::collections::BTreeMap<usize, Vec<Rect>> =
        std::collections::BTreeMap::new();
    for (i, obstacle) in obstacles.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(obstacle.rect);
    }
    groups.into_values().map(CompoundObstacle::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_merges_abutting_rectangles() {
        let set: ObstacleSet = vec![
            Rect::new(0.0, 0.0, 10.0, 10.0),
            Rect::new(10.0, 0.0, 20.0, 10.0),
            Rect::new(20.0, 0.0, 30.0, 10.0),
            Rect::new(100.0, 100.0, 110.0, 110.0),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.compounds().len(), 2);
        let big = set
            .compounds()
            .iter()
            .find(|c| c.rects().len() == 3)
            .expect("three-member compound");
        assert_eq!(big.bounding_box(), Rect::new(0.0, 0.0, 30.0, 10.0));
    }

    #[test]
    fn contour_of_single_rect_is_its_corners() {
        let c = CompoundObstacle::new(vec![Rect::new(0.0, 0.0, 4.0, 2.0)]);
        let contour = c.contour();
        assert_eq!(contour.len(), 4);
        assert!(crate::approx_eq(c.contour_length(), 12.0));
    }

    #[test]
    fn contour_of_row_of_equal_rects_is_their_union() {
        let c = CompoundObstacle::new(vec![
            Rect::new(0.0, 0.0, 10.0, 10.0),
            Rect::new(10.0, 0.0, 20.0, 10.0),
        ]);
        // Union is a 20x10 rectangle: perimeter 60.
        assert!(crate::approx_eq(c.contour_length(), 60.0));
        assert_eq!(c.contour().len(), 4);
    }

    #[test]
    fn contour_of_staircase_compound() {
        // Two stacked rects forming an L: 10x10 at origin plus 10x10 shifted
        // right and up so they share a corner region.
        let c = CompoundObstacle::new(vec![
            Rect::new(0.0, 0.0, 10.0, 10.0),
            Rect::new(10.0, 0.0, 20.0, 20.0),
        ]);
        let contour = c.contour();
        // Exact union contour: 6 corners, perimeter 2*(20+20) = 80.
        assert_eq!(contour.len(), 6);
        assert!(crate::approx_eq(c.contour_length(), 80.0));
    }

    #[test]
    fn u_shaped_compound_falls_back_to_bounding_box() {
        // Two towers and a base forming a U: the middle column has two
        // disjoint y-intervals only if the base is absent; build exactly that
        // pathological pair (two towers that touch a shared base diagonal?).
        // Here: two disjoint-in-y rects forced into one compound through a
        // thin connector that does not cover the gap column.
        let c = CompoundObstacle::new(vec![
            Rect::new(0.0, 0.0, 30.0, 5.0),   // base
            Rect::new(0.0, 5.0, 10.0, 30.0),  // left tower
            Rect::new(20.0, 5.0, 30.0, 30.0), // right tower
        ]);
        let contour = c.contour();
        // Middle column (x in 10..20) has y coverage only [0,5]; columns at
        // the towers have [0,30]: still a single interval per column, so the
        // exact contour is produced (8 corners). The U-opening faces up and
        // the profile method captures the outer boundary of the union's
        // upper profile, which steps down across the opening.
        assert!(contour.len() >= 4);
        let bbox = c.bounding_box();
        for p in &contour {
            assert!(bbox.contains(*p));
        }
    }

    #[test]
    fn point_and_segment_queries() {
        let set: ObstacleSet = vec![Rect::new(0.0, 0.0, 10.0, 10.0)].into_iter().collect();
        assert!(set.contains_point(Point::new(5.0, 5.0)));
        assert!(!set.contains_point_strict(Point::new(0.0, 5.0)));
        let crossing = Segment::new(Point::new(-5.0, 5.0), Point::new(15.0, 5.0));
        let outside = Segment::new(Point::new(-5.0, 20.0), Point::new(15.0, 20.0));
        assert!(set.intersects_segment(&crossing));
        assert!(!set.intersects_segment(&outside));
        assert_eq!(set.compounds_crossed_by(&crossing), vec![0]);
    }

    #[test]
    fn empty_set_reports_empty() {
        let set = ObstacleSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(!set.contains_point(Point::origin()));
    }
}
