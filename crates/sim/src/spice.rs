//! SPICE interchange: deck generation and measurement parsing.
//!
//! The original Contango drives ngSPICE (ISPD'09 contest) or HSPICE
//! (scalability study) through generated decks and PERL scripts that scrape
//! the `.measure` results. This module reproduces that interface so the
//! flow can be wired to a real circuit simulator when one is available:
//!
//! * [`write_deck`] emits a transient-analysis SPICE deck for a [`Netlist`]
//!   at a given supply corner. Buffers are modelled as Thevenin stages (a
//!   switched ideal source behind the composite inverter's output
//!   resistance), exactly like the built-in evaluator, so a SPICE run on the
//!   emitted deck reproduces the evaluator's circuit rather than requiring
//!   45 nm transistor models that cannot be redistributed.
//! * [`parse_measurements`] reads `.measure`-style result lines
//!   (`name = value`, HSPICE `.mt0` or ngSPICE output) into a map.
//! * [`report_from_measurements`] assembles a [`CornerReport`] from such a
//!   map, making an external simulator a drop-in replacement for the
//!   built-in evaluator at the corner level.
//!
//! Latency measurements are named `lat_r_<sink>` / `lat_f_<sink>` and slews
//! `slew_r_<sink>` / `slew_f_<sink>`; values are in seconds in the deck
//! (SPICE convention) and converted to picoseconds on parsing.

use crate::error::SpiceError;
use crate::netlist::{Netlist, TapKind};
use crate::report::{CornerReport, SinkTiming, TransitionTiming};
use contango_tech::Technology;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Seconds per picosecond, used when converting deck values.
const S_PER_PS: f64 = 1.0e-12;
/// Farads per femtofarad.
const F_PER_FF: f64 = 1.0e-15;

/// Options controlling deck generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeckOptions {
    /// Supply voltage of the corner being simulated, in volts.
    pub vdd: f64,
    /// 10%–90% slew of the ideal clock edge applied at the source, in ps.
    pub input_slew: f64,
    /// Total simulated time, in ps.
    pub stop_ps: f64,
    /// Maximum timestep, in ps.
    pub step_ps: f64,
}

impl DeckOptions {
    /// Deck options for a technology's nominal corner.
    pub fn nominal(tech: &Technology) -> Self {
        Self {
            vdd: tech.nominal_corner.vdd,
            input_slew: 50.0,
            stop_ps: 4000.0,
            step_ps: 1.0,
        }
    }

    /// Deck options for a technology's reduced-supply corner.
    pub fn low(tech: &Technology) -> Self {
        Self {
            vdd: tech.low_corner.vdd,
            ..Self::nominal(tech)
        }
    }
}

/// Name of the SPICE node at position `node` of stage `stage`.
///
/// Node 0 of each stage is the stage's driving point.
pub fn node_name(stage: usize, node: usize) -> String {
    format!("s{stage}_n{node}")
}

/// Name of the rising-latency measurement of a sink.
pub fn rise_latency_name(sink: usize) -> String {
    format!("lat_r_{sink}")
}

/// Name of the falling-latency measurement of a sink.
pub fn fall_latency_name(sink: usize) -> String {
    format!("lat_f_{sink}")
}

/// Name of the rising-slew measurement of a sink.
pub fn rise_slew_name(sink: usize) -> String {
    format!("slew_r_{sink}")
}

/// Name of the falling-slew measurement of a sink.
pub fn fall_slew_name(sink: usize) -> String {
    format!("slew_f_{sink}")
}

/// Emits a transient SPICE deck for `netlist` at the corner described by
/// `options`.
///
/// The deck contains, per stage, the stage's RC tree as `R`/`C` elements and
/// the stage driver as a voltage-controlled Thevenin source (`E` element
/// behind the driver's output resistance), plus `.measure` statements for
/// every sink's rise/fall latency and 10–90% slew. The source is a PWL
/// pulse rising at `t = 0`.
///
/// The emitted circuit is the same circuit the built-in transient evaluator
/// solves, so an external simulator run on this deck validates (or replaces)
/// the built-in results.
pub fn write_deck(netlist: &Netlist, tech: &Technology, options: &DeckOptions) -> String {
    let mut out = String::new();
    let vdd = options.vdd;
    let derate = tech.derate(vdd);
    let _ = writeln!(
        out,
        "* Contango clock-network deck ({} stages)",
        netlist.len()
    );
    let _ = writeln!(out, "* supply corner: {vdd} V, derate factor {derate:.4}");
    let _ = writeln!(out, ".param vdd={vdd}");
    let _ = writeln!(out, ".option post probe");
    let _ = writeln!(out);

    // Ideal clock edge at the chip input: rise from 0 to VDD over the 10-90
    // input slew (extended to the full 0-100 ramp).
    let ramp_ps = options.input_slew / 0.8;
    let _ = writeln!(out, "Vclk clk_in 0 PWL(0ps 0V {ramp_ps:.3}ps {vdd}V)");
    let _ = writeln!(out);

    for (si, stage) in netlist.stages.iter().enumerate() {
        let spec = stage.driver.spec();
        let drive_node = node_name(si, 0);
        let _ = writeln!(out, "* ---- stage {si} ----");
        if stage.driver.is_source() {
            // The chip-level source drives the root stage directly.
            let _ = writeln!(
                out,
                "Rdrv{si} clk_in {drive_node} {res:.4}",
                res = spec.output_res
            );
        } else {
            // Thevenin model of a composite inverter: an ideal inverting
            // (or buffering) dependent source behind the output resistance.
            // The controlling node is the tap of the parent stage feeding
            // this stage; it is recorded below when the parent is emitted,
            // so here we reference the canonical input net name.
            let gain = if spec.inverting { -1.0 } else { 1.0 };
            let _ = writeln!(
                out,
                "Ebuf{si} buf{si}_out 0 VOL='{off} + {gain}*V(stage{si}_in)'",
                off = if spec.inverting { "vdd" } else { "0" },
            );
            let _ = writeln!(
                out,
                "Rdrv{si} buf{si}_out {drive_node} {res:.4}",
                res = spec.output_res / derate
            );
            let _ = writeln!(
                out,
                "Cdrv{si} {drive_node} 0 {cap:.6e}",
                cap = spec.output_cap * F_PER_FF
            );
        }
        // Stage RC tree. Node 0 carries only its grounded capacitance (the
        // driver resistance above stands in for its series element).
        for (idx, (parent, res, cap)) in stage.tree.iter().enumerate() {
            let name = node_name(si, idx);
            if idx > 0 {
                let pname = node_name(si, parent);
                let _ = writeln!(out, "R{si}_{idx} {pname} {name} {res:.4}");
            }
            if cap > 0.0 {
                let _ = writeln!(out, "C{si}_{idx} {name} 0 {c:.6e}", c = cap * F_PER_FF);
            }
        }
        // Tap bookkeeping: downstream stage inputs alias the tap node.
        for tap in &stage.taps {
            if let TapKind::Stage(child) = tap.kind {
                let _ = writeln!(
                    out,
                    "Rin{child} {tap_node} stage{child}_in 0.001",
                    tap_node = node_name(si, tap.node)
                );
            }
        }
        let _ = writeln!(out);
    }

    // Measurements: latency (50% crossing referenced to the clock input) and
    // 10-90% slew at every sink tap.
    let _ = writeln!(out, "* ---- measurements ----");
    for (si, stage) in netlist.stages.iter().enumerate() {
        for tap in &stage.taps {
            let TapKind::Sink(sink) = tap.kind else {
                continue;
            };
            let node = node_name(si, tap.node);
            let inverted = sink_polarity_inverted(netlist, si);
            // With an even number of inversions a rising input produces a
            // rising edge at the sink; with an odd number it produces a
            // falling edge. Measurement names always refer to the transition
            // *at the sink*.
            let (rise_dir, fall_dir) = if inverted {
                ("FALL", "RISE")
            } else {
                ("RISE", "FALL")
            };
            let _ = writeln!(
                out,
                ".measure tran {name} TRIG v(clk_in) VAL='0.5*vdd' RISE=1 TARG v({node}) VAL='0.5*vdd' {dir}=1",
                name = rise_latency_name(sink),
                dir = rise_dir
            );
            let _ = writeln!(
                out,
                ".measure tran {name} TRIG v(clk_in) VAL='0.5*vdd' RISE=1 TARG v({node}) VAL='0.5*vdd' {dir}=1",
                name = fall_latency_name(sink),
                dir = fall_dir
            );
            let _ = writeln!(
                out,
                ".measure tran {name} TRIG v({node}) VAL='0.1*vdd' {dir}=1 TARG v({node}) VAL='0.9*vdd' {dir}=1",
                name = rise_slew_name(sink),
                dir = rise_dir
            );
            let _ = writeln!(
                out,
                ".measure tran {name} TRIG v({node}) VAL='0.9*vdd' {dir}=1 TARG v({node}) VAL='0.1*vdd' {dir}=1",
                name = fall_slew_name(sink),
                dir = fall_dir
            );
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        ".tran {step}ps {stop}ps",
        step = options.step_ps,
        stop = options.stop_ps
    );
    let _ = writeln!(out, ".end");
    out
}

/// Returns `true` when the path from the netlist root to stage `stage`
/// passes through an odd number of inverting drivers (including the stage's
/// own driver).
fn sink_polarity_inverted(netlist: &Netlist, stage: usize) -> bool {
    // Parent map: stage -> driving stage.
    let mut parent = vec![usize::MAX; netlist.len()];
    for (si, s) in netlist.stages.iter().enumerate() {
        for tap in &s.taps {
            if let TapKind::Stage(child) = tap.kind {
                parent[child] = si;
            }
        }
    }
    let mut inversions = 0usize;
    let mut cur = stage;
    loop {
        if netlist.stages[cur].driver.inverting() {
            inversions += 1;
        }
        if cur == netlist.root || parent[cur] == usize::MAX {
            break;
        }
        cur = parent[cur];
    }
    inversions % 2 == 1
}

/// A parsed set of SPICE measurements, keyed by lower-cased measurement
/// name, with values converted from seconds to picoseconds.
pub type Measurements = BTreeMap<String, f64>;

/// Parses measurement result lines into a map.
///
/// Accepts the common formats produced by ngSPICE and HSPICE:
///
/// ```text
/// lat_r_3 = 5.0312e-10 targ=...  trig=...
/// lat_f_3=5.1e-10
/// ```
///
/// Lines that do not look like measurements (banners, `.mt0` headers,
/// comments) are skipped. Values of `failed` are reported as errors.
///
/// # Errors
///
/// Returns an error naming the first measurement whose value cannot be
/// parsed or that the simulator reported as `failed`.
pub fn parse_measurements(text: &str) -> Result<Measurements, SpiceError> {
    let mut out = Measurements::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') || line.starts_with('#') {
            continue;
        }
        let Some(eq) = line.find('=') else {
            continue;
        };
        let name = line[..eq].trim().to_ascii_lowercase();
        if name.is_empty() || name.contains(char::is_whitespace) {
            continue;
        }
        if !(name.starts_with("lat_") || name.starts_with("slew_")) {
            continue;
        }
        let rest = line[eq + 1..].trim();
        let value_token = rest.split_whitespace().next().unwrap_or("");
        if value_token.eq_ignore_ascii_case("failed") {
            return Err(SpiceError::MeasurementFailed { name });
        }
        let seconds: f64 =
            parse_spice_number(value_token).ok_or_else(|| SpiceError::UnparsableValue {
                name: name.clone(),
                value: value_token.to_string(),
            })?;
        out.insert(name, seconds / S_PER_PS);
    }
    Ok(out)
}

/// Parses a SPICE number, accepting engineering suffixes (`p`, `n`, `u`,
/// `m`, `k`, `meg`, `g`, `f`).
fn parse_spice_number(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    if let Ok(v) = t.parse::<f64>() {
        return Some(v);
    }
    let suffixes: [(&str, f64); 8] = [
        ("meg", 1e6),
        ("f", 1e-15),
        ("p", 1e-12),
        ("n", 1e-9),
        ("u", 1e-6),
        ("m", 1e-3),
        ("k", 1e3),
        ("g", 1e9),
    ];
    for (suffix, scale) in suffixes {
        if let Some(mantissa) = t.strip_suffix(suffix) {
            if let Ok(v) = mantissa.parse::<f64>() {
                return Some(v * scale);
            }
        }
    }
    None
}

/// Builds a [`CornerReport`] for the sinks of `netlist` from parsed SPICE
/// measurements at supply `vdd`.
///
/// # Errors
///
/// Returns an error naming the first sink with a missing measurement.
pub fn report_from_measurements(
    netlist: &Netlist,
    vdd: f64,
    measurements: &Measurements,
) -> Result<CornerReport, SpiceError> {
    let mut sinks = Vec::new();
    let mut max_slew = 0.0_f64;
    let mut ids = netlist.sink_ids();
    ids.sort_unstable();
    for sink in ids {
        let lookup = |name: String| -> Result<f64, SpiceError> {
            measurements
                .get(&name)
                .copied()
                .ok_or(SpiceError::MissingMeasurement { sink, name })
        };
        let rise = TransitionTiming {
            latency: lookup(rise_latency_name(sink))?,
            slew: lookup(rise_slew_name(sink))?.abs(),
        };
        let fall = TransitionTiming {
            latency: lookup(fall_latency_name(sink))?,
            slew: lookup(fall_slew_name(sink))?.abs(),
        };
        max_slew = max_slew.max(rise.slew).max(fall.slew);
        sinks.push(SinkTiming {
            sink_id: sink,
            rise,
            fall,
        });
    }
    Ok(CornerReport {
        vdd,
        sinks,
        max_slew,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverSpec, SourceSpec};
    use crate::netlist::{Stage, StageDriver, Tap};
    use crate::RcTree;

    /// Two-stage netlist: source stage driving a buffer stage with two sinks.
    fn two_stage_netlist() -> Netlist {
        let mut root_tree = RcTree::new();
        let r0 = root_tree.add_root(5.0);
        let r1 = root_tree.add_node(r0, 20.0, 8.0);
        let root = Stage {
            driver: StageDriver::Source(SourceSpec::ispd09()),
            tree: root_tree,
            taps: vec![Tap {
                node: r1,
                kind: TapKind::Stage(1),
            }],
        };

        let mut leaf_tree = RcTree::new();
        let l0 = leaf_tree.add_root(4.0);
        let l1 = leaf_tree.add_node(l0, 30.0, 12.0);
        let l2 = leaf_tree.add_node(l0, 25.0, 9.0);
        let leaf = Stage {
            driver: StageDriver::Buffer(DriverSpec {
                output_res: 55.0,
                output_cap: 48.8,
                input_cap: 33.6,
                intrinsic_delay: 8.0,
                inverting: true,
            }),
            tree: leaf_tree,
            taps: vec![
                Tap {
                    node: l1,
                    kind: TapKind::Sink(0),
                },
                Tap {
                    node: l2,
                    kind: TapKind::Sink(1),
                },
            ],
        };
        Netlist::new(vec![root, leaf], 0).expect("valid netlist")
    }

    #[test]
    fn deck_contains_every_element_and_measurement() {
        let netlist = two_stage_netlist();
        let tech = Technology::ispd09();
        let deck = write_deck(&netlist, &tech, &DeckOptions::nominal(&tech));
        assert!(deck.contains("Vclk clk_in"));
        assert!(deck.contains("Rdrv0 clk_in"));
        assert!(deck.contains("Ebuf1"));
        assert!(deck.contains(&node_name(1, 2)));
        for sink in 0..2 {
            assert!(deck.contains(&rise_latency_name(sink)));
            assert!(deck.contains(&fall_latency_name(sink)));
            assert!(deck.contains(&rise_slew_name(sink)));
            assert!(deck.contains(&fall_slew_name(sink)));
        }
        assert!(deck.trim_end().ends_with(".end"));
    }

    #[test]
    fn deck_respects_supply_corner() {
        let netlist = two_stage_netlist();
        let tech = Technology::ispd09();
        let nominal = write_deck(&netlist, &tech, &DeckOptions::nominal(&tech));
        let low = write_deck(&netlist, &tech, &DeckOptions::low(&tech));
        assert!(nominal.contains(".param vdd=1.2\n"));
        assert!(low.contains(".param vdd=1\n"));
        assert_ne!(nominal, low);
    }

    #[test]
    fn inverted_sink_swaps_measured_transitions() {
        let netlist = two_stage_netlist();
        let tech = Technology::ispd09();
        let deck = write_deck(&netlist, &tech, &DeckOptions::nominal(&tech));
        // The single inverting buffer makes the sink-side rising transition
        // come from a FALL at the sink node measurement target.
        let rise_line = deck
            .lines()
            .find(|l| l.contains(&rise_latency_name(0)))
            .expect("rise measurement present");
        assert!(rise_line.contains("FALL=1"), "line: {rise_line}");
    }

    #[test]
    fn measurement_parser_handles_spice_formats() {
        let text = "\
* hspice .mt0 style
lat_r_0 = 5.0312e-10 targ= 5.1e-10 trig= 9.7e-12
lat_f_0= 512p
slew_r_0 = 4.4e-11
slew_f_0 = 38p
ignored_line
temper = 25.0
";
        let m = parse_measurements(text).expect("parses");
        assert!((m["lat_r_0"] - 503.12).abs() < 1e-6);
        assert!((m["lat_f_0"] - 512.0).abs() < 1e-9);
        assert!((m["slew_f_0"] - 38.0).abs() < 1e-9);
        assert!(!m.contains_key("temper"));
    }

    #[test]
    fn failed_measurements_are_reported() {
        let err = parse_measurements("lat_r_0 = failed\n").expect_err("fails");
        assert!(err.to_string().contains("lat_r_0"));
    }

    #[test]
    fn report_assembly_round_trips_all_sinks() {
        let netlist = two_stage_netlist();
        let mut m = Measurements::new();
        for sink in 0..2 {
            m.insert(rise_latency_name(sink), 500.0 + sink as f64);
            m.insert(fall_latency_name(sink), 505.0 + sink as f64);
            m.insert(rise_slew_name(sink), 40.0);
            m.insert(fall_slew_name(sink), 42.0);
        }
        let report = report_from_measurements(&netlist, 1.2, &m).expect("complete");
        assert_eq!(report.sinks.len(), 2);
        assert_eq!(report.vdd, 1.2);
        assert!((report.sink(1).expect("sink 1").rise.latency - 501.0).abs() < 1e-9);
        assert!((report.max_slew - 42.0).abs() < 1e-9);
        assert!(report.skew() >= 0.0);
    }

    #[test]
    fn missing_measurement_is_an_error() {
        let netlist = two_stage_netlist();
        let mut m = Measurements::new();
        m.insert(rise_latency_name(0), 500.0);
        let err = report_from_measurements(&netlist, 1.2, &m).expect_err("incomplete");
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn spice_number_suffixes() {
        let close = |v: Option<f64>, expected: f64| {
            let v = v.expect("parses");
            assert!((v - expected).abs() <= 1e-9 * expected.abs());
        };
        close(parse_spice_number("1.5n"), 1.5e-9);
        close(parse_spice_number("2meg"), 2e6);
        close(parse_spice_number("3.2e-10"), 3.2e-10);
        assert_eq!(parse_spice_number("bogus"), None);
    }
}
