//! RC-tree representation and moment computation.

use serde::{Deserialize, Serialize};

/// One node of an [`RcTree`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct RcNode {
    /// Parent node index; `usize::MAX` for the root.
    parent: usize,
    /// Resistance of the wire from the parent to this node, in Ω.
    res: f64,
    /// Capacitance to ground at this node, in fF.
    cap: f64,
}

/// A grounded-capacitor RC tree, the electrical model of one buffered stage
/// of a clock network.
///
/// Node `0` is the *driving point* (the output of the stage's driver); every
/// other node is connected to its parent through a resistor and carries a
/// grounded capacitance (wire capacitance, sink capacitance and/or the input
/// capacitance of downstream buffers).
///
/// Nodes are created in topological order: a node's parent always has a
/// smaller index. All traversals exploit this to run in a single pass.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RcTree {
    nodes: Vec<RcNode>,
}

impl RcTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the root (driving-point) node with the given grounded
    /// capacitance and returns its index (always `0`).
    ///
    /// # Panics
    ///
    /// Panics if the tree already has a root.
    pub fn add_root(&mut self, cap: f64) -> usize {
        assert!(self.nodes.is_empty(), "RcTree already has a root");
        self.nodes.push(RcNode {
            parent: usize::MAX,
            res: 0.0,
            cap,
        });
        0
    }

    /// Adds a node connected to `parent` through `res` ohms, carrying `cap`
    /// femtofarads, and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not an existing node index.
    pub fn add_node(&mut self, parent: usize, res: f64, cap: f64) -> usize {
        assert!(parent < self.nodes.len(), "parent node does not exist");
        self.nodes.push(RcNode { parent, res, cap });
        self.nodes.len() - 1
    }

    /// Adds `extra` femtofarads of grounded capacitance to node `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn add_cap(&mut self, idx: usize, extra: f64) {
        self.nodes[idx].cap += extra;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Parent of node `idx`, or `None` for the root.
    pub fn parent(&self, idx: usize) -> Option<usize> {
        let p = self.nodes[idx].parent;
        (p != usize::MAX).then_some(p)
    }

    /// Resistance from the parent to node `idx`, in Ω (zero for the root).
    pub fn resistance(&self, idx: usize) -> f64 {
        self.nodes[idx].res
    }

    /// Grounded capacitance at node `idx`, in fF.
    pub fn capacitance(&self, idx: usize) -> f64 {
        self.nodes[idx].cap
    }

    /// Total grounded capacitance of the tree, in fF.
    pub fn total_cap(&self) -> f64 {
        self.nodes.iter().map(|n| n.cap).sum()
    }

    /// Capacitance of the subtree rooted at each node (the node's own cap
    /// plus all descendants), in fF.
    pub fn downstream_caps(&self) -> Vec<f64> {
        let mut down: Vec<f64> = self.nodes.iter().map(|n| n.cap).collect();
        for i in (1..self.nodes.len()).rev() {
            let p = self.nodes[i].parent;
            down[p] += down[i];
        }
        down
    }

    /// First delay moments (Elmore delays) of every node for a step applied
    /// through `driver_res` ohms at the driving point, in ps.
    ///
    /// `m1[i] = Σ_k R(path ∩ path_k) · C_k`, the classic Elmore expression,
    /// including the driver resistance which is common to all paths.
    pub fn elmore_from(&self, driver_res: f64) -> Vec<f64> {
        let down = self.downstream_caps();
        let mut m1 = vec![0.0; self.nodes.len()];
        if self.nodes.is_empty() {
            return m1;
        }
        m1[0] = driver_res * down[0] * contango_tech::units::RC_TO_PS;
        for i in 1..self.nodes.len() {
            let p = self.nodes[i].parent;
            m1[i] = m1[p] + self.nodes[i].res * down[i] * contango_tech::units::RC_TO_PS;
        }
        m1
    }

    /// First and second delay moments of every node (in ps and ps²) for a
    /// step applied through `driver_res` ohms at the driving point.
    ///
    /// The second moment is computed with the standard recursive formula
    /// `m2[i] = Σ_k R(path ∩ path_k) · C_k · m1[k]`, evaluated with the same
    /// bottom-up/top-down sweeps as the Elmore delay.
    pub fn moments_from(&self, driver_res: f64) -> (Vec<f64>, Vec<f64>) {
        let m1 = self.elmore_from(driver_res);
        let n = self.nodes.len();
        let mut m2 = vec![0.0; n];
        if n == 0 {
            return (m1, m2);
        }
        // "Capacitance-weighted Elmore" per subtree: Σ_{k ∈ subtree(i)} C_k · m1[k].
        let mut weighted: Vec<f64> = (0..n).map(|i| self.nodes[i].cap * m1[i]).collect();
        for i in (1..n).rev() {
            let p = self.nodes[i].parent;
            weighted[p] += weighted[i];
        }
        m2[0] = driver_res * weighted[0] * contango_tech::units::RC_TO_PS;
        for i in 1..n {
            let p = self.nodes[i].parent;
            m2[i] = m2[p] + self.nodes[i].res * weighted[i] * contango_tech::units::RC_TO_PS;
        }
        (m1, m2)
    }

    /// Iterator over `(parent, res, cap)` triples in node order; the root
    /// reports `parent == usize::MAX`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64, f64)> + '_ {
        self.nodes.iter().map(|n| (n.parent, n.res, n.cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Driver -> 100 Ω/50 fF wire -> branch into two 50 Ω/20 fF legs.
    fn branchy() -> RcTree {
        let mut t = RcTree::new();
        let root = t.add_root(5.0);
        let mid = t.add_node(root, 100.0, 50.0);
        let a = t.add_node(mid, 50.0, 20.0);
        let b = t.add_node(mid, 50.0, 30.0);
        assert_eq!((root, mid, a, b), (0, 1, 2, 3));
        t
    }

    #[test]
    fn downstream_caps_accumulate() {
        let t = branchy();
        let d = t.downstream_caps();
        assert_eq!(d[0], 105.0);
        assert_eq!(d[1], 100.0);
        assert_eq!(d[2], 20.0);
        assert_eq!(d[3], 30.0);
        assert_eq!(t.total_cap(), 105.0);
    }

    #[test]
    fn elmore_is_monotonic_along_paths() {
        let t = branchy();
        let m1 = t.elmore_from(200.0);
        assert!(m1[1] > m1[0]);
        assert!(m1[2] > m1[1]);
        assert!(m1[3] > m1[1]);
    }

    #[test]
    fn elmore_matches_hand_computation() {
        // Single chain: Rd=100 into 10 fF, then 50 Ω into 40 fF.
        let mut t = RcTree::new();
        let r = t.add_root(10.0);
        let n = t.add_node(r, 50.0, 40.0);
        let m1 = t.elmore_from(100.0);
        // m1[root] = 100 * (10+40) fF = 5000 Ω·fF = 5 ps
        assert!((m1[r] - 5.0).abs() < 1e-12);
        // m1[n] = 5 ps + 50 * 40 fF = 5 + 2 = 7 ps
        assert!((m1[n] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn second_moment_exceeds_first_squared_over_two_for_chains() {
        // For RC chains m2 >= m1^2 / 2 (response is "wider" than a single
        // pole); just check positivity and monotonicity here.
        let t = branchy();
        let (m1, m2) = t.moments_from(100.0);
        for &m2_i in &m2 {
            assert!(m2_i > 0.0);
        }
        assert!(m2[2] > m2[1]);
        assert!(m1[2] > m1[1]);
    }

    #[test]
    fn single_node_tree_has_driver_dominated_delay() {
        let mut t = RcTree::new();
        let r = t.add_root(100.0);
        let m1 = t.elmore_from(55.0);
        assert!((m1[r] - 5.5).abs() < 1e-12);
    }

    #[test]
    fn add_cap_increases_total() {
        let mut t = branchy();
        let before = t.total_cap();
        t.add_cap(2, 15.0);
        assert_eq!(t.total_cap(), before + 15.0);
        assert_eq!(t.capacitance(2), 35.0);
    }

    #[test]
    #[should_panic(expected = "parent node does not exist")]
    fn invalid_parent_rejected() {
        let mut t = RcTree::new();
        t.add_root(1.0);
        t.add_node(7, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "already has a root")]
    fn double_root_rejected() {
        let mut t = RcTree::new();
        t.add_root(1.0);
        t.add_root(1.0);
    }

    #[test]
    fn parent_accessor() {
        let t = branchy();
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(2), Some(1));
        assert_eq!(t.resistance(2), 50.0);
    }
}
