//! Backward-Euler transient simulation of one buffered stage.
//!
//! Every buffered stage of a clock network is an RC tree driven by a
//! Thevenin source (the stage driver's output resistance in series with a
//! saturated-ramp voltage source). Because the conductance matrix of a tree
//! is, after a leaf-first elimination order, triangular with exactly one
//! off-diagonal entry per node, each backward-Euler step is solved exactly
//! in `O(n)` without any general sparse-matrix machinery. The elimination
//! coefficients depend only on the time step, so they are factored once per
//! simulation.

use crate::RcTree;
use serde::{Deserialize, Serialize};

/// Waveform measurements of a transient run: for every node of the stage's
/// RC tree, the 50% crossing time relative to the 50% crossing of the source
/// ramp, and the 10%–90% transition time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientResult {
    /// Per-node network delay (50% source crossing to 50% node crossing), ps.
    pub delay50: Vec<f64>,
    /// Per-node 10%–90% output transition time, ps.
    pub slew: Vec<f64>,
    /// Number of time steps the solver used.
    pub steps: usize,
}

/// Backward-Euler solver for a single stage.
#[derive(Debug, Clone)]
pub struct TransientSolver {
    /// Conductance from each node to its parent (node 0: to the source), S.
    g_parent: Vec<f64>,
    /// Parent indices (node 0 has no stored parent).
    parents: Vec<usize>,
    /// Node capacitances in fF.
    caps: Vec<f64>,
    /// Supply voltage of this corner, V.
    vdd: f64,
    /// 0%–100% ramp time of the source, ps.
    ramp: f64,
    /// Largest Elmore delay of the stage, used to size steps and the horizon.
    tau_max: f64,
}

impl TransientSolver {
    /// Prepares a solver for `tree` driven through `driver_res` ohms by a
    /// source ramping from 0 to `vdd` volts over `ramp_ps` picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty or the driver resistance is not positive.
    pub fn new(tree: &RcTree, driver_res: f64, vdd: f64, ramp_ps: f64) -> Self {
        assert!(!tree.is_empty(), "cannot simulate an empty stage");
        assert!(driver_res > 0.0, "driver resistance must be positive");
        let n = tree.len();
        let mut g_parent = vec![0.0; n];
        let mut parents = vec![0usize; n];
        let mut caps = vec![0.0; n];
        for (i, (parent, res, cap)) in tree.iter().enumerate() {
            caps[i] = cap.max(1e-6); // avoid singular steps on zero-cap nodes
            if i == 0 {
                g_parent[i] = 1.0 / driver_res;
                parents[i] = usize::MAX;
            } else {
                // Zero-length wires still need a finite conductance.
                let r = res.max(1e-3);
                g_parent[i] = 1.0 / r;
                parents[i] = parent;
            }
        }
        let tau_max = tree
            .elmore_from(driver_res)
            .into_iter()
            .fold(0.0_f64, f64::max)
            .max(1.0);
        Self {
            g_parent,
            parents,
            caps,
            vdd,
            ramp: ramp_ps.max(1.0),
            tau_max,
        }
    }

    /// Runs the simulation and extracts delays and slews for every node.
    pub fn solve(&self) -> TransientResult {
        let n = self.caps.len();
        // Step size: resolve the ramp and the dominant time constant.
        let dt = (self.tau_max / 60.0).min(self.ramp / 20.0).clamp(0.02, 5.0);
        let horizon = self.ramp + 12.0 * self.tau_max + 50.0;
        let max_steps = ((horizon / dt).ceil() as usize).max(16);

        // Pre-factor the (C/dt + G) tree matrix with leaf-first elimination.
        // diag[i] = C_i/dt + Σ adjacent conductances. Conductances are in
        // siemens; C/dt in fF/ps equals 10⁻³ S, hence the 1e-3 factor.
        let inv_dt = 1.0 / dt;
        let mut diag: Vec<f64> = (0..n)
            .map(|i| self.caps[i] * inv_dt * 1e-3 + self.g_parent[i])
            .collect();
        for i in 1..n {
            let p = self.parents[i];
            diag[p] += self.g_parent[i];
        }
        // Leaf-first elimination of the off-diagonal entries (children have
        // larger indices than parents, so reverse order is leaf-first).
        let mut diag_elim = diag.clone();
        for i in (1..n).rev() {
            let p = self.parents[i];
            diag_elim[p] -= self.g_parent[i] * self.g_parent[i] / diag_elim[i];
        }

        let mut v = vec![0.0_f64; n];
        let mut rhs = vec![0.0_f64; n];
        let v10 = 0.1 * self.vdd;
        let v50 = 0.5 * self.vdd;
        let v90 = 0.9 * self.vdd;
        let mut t10 = vec![f64::NAN; n];
        let mut t50 = vec![f64::NAN; n];
        let mut t90 = vec![f64::NAN; n];
        let mut prev_v = v.clone();
        let mut steps = 0usize;

        for step in 1..=max_steps {
            let t = step as f64 * dt;
            let vs = self.source_voltage(t);
            for i in 0..n {
                rhs[i] = self.caps[i] * inv_dt * 1e-3 * v[i];
            }
            rhs[0] += self.g_parent[0] * vs;
            // Eliminate leaf-first.
            for i in (1..n).rev() {
                let p = self.parents[i];
                rhs[p] += self.g_parent[i] * rhs[i] / diag_elim[i];
            }
            prev_v.copy_from_slice(&v);
            v[0] = rhs[0] / diag_elim[0];
            for i in 1..n {
                let p = self.parents[i];
                v[i] = (rhs[i] + self.g_parent[i] * v[p]) / diag_elim[i];
            }
            // Record threshold crossings with linear interpolation.
            for i in 0..n {
                record_crossing(&mut t10[i], prev_v[i], v[i], v10, t, dt);
                record_crossing(&mut t50[i], prev_v[i], v[i], v50, t, dt);
                record_crossing(&mut t90[i], prev_v[i], v[i], v90, t, dt);
            }
            steps = step;
            if t90.iter().all(|x| !x.is_nan()) && t > self.ramp {
                break;
            }
        }

        // The source crosses 50% at ramp/2.
        let source_t50 = 0.5 * self.ramp;
        let delay50 = t50
            .iter()
            .map(|&x| {
                if x.is_nan() {
                    f64::INFINITY
                } else {
                    x - source_t50
                }
            })
            .collect();
        let slew = t10
            .iter()
            .zip(t90.iter())
            .map(|(&a, &b)| {
                if a.is_nan() || b.is_nan() {
                    f64::INFINITY
                } else {
                    b - a
                }
            })
            .collect();
        TransientResult {
            delay50,
            slew,
            steps,
        }
    }

    /// Saturated-ramp source voltage at time `t`.
    fn source_voltage(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else if t >= self.ramp {
            self.vdd
        } else {
            self.vdd * t / self.ramp
        }
    }
}

/// Records the interpolated time of an upward threshold crossing.
fn record_crossing(slot: &mut f64, v_prev: f64, v_new: f64, threshold: f64, t: f64, dt: f64) {
    if slot.is_nan() && v_prev < threshold && v_new >= threshold {
        let frac = if (v_new - v_prev).abs() > 1e-15 {
            (threshold - v_prev) / (v_new - v_prev)
        } else {
            1.0
        };
        *slot = t - dt + frac * dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contango_tech::units;

    /// Lumped RC: 100 Ω driver into a single 500 fF capacitor.
    fn lumped() -> RcTree {
        let mut t = RcTree::new();
        t.add_root(500.0);
        t
    }

    #[test]
    fn single_pole_delay_matches_theory_within_tolerance() {
        let tree = lumped();
        let solver = TransientSolver::new(&tree, 100.0, 1.2, 2.0);
        let res = solver.solve();
        // Theory: tau = 50 ps, t50 = ln2 * tau = 34.66 ps, slew = ln9*tau = 109.9 ps.
        let tau = units::rc_ps(100.0, 500.0);
        let expect_delay = units::DELAY_LN2 * tau;
        let expect_slew = units::SLEW_LN9 * tau;
        assert!(
            (res.delay50[0] - expect_delay).abs() < 0.1 * expect_delay,
            "delay {} vs {}",
            res.delay50[0],
            expect_delay
        );
        assert!(
            (res.slew[0] - expect_slew).abs() < 0.1 * expect_slew,
            "slew {} vs {}",
            res.slew[0],
            expect_slew
        );
    }

    #[test]
    fn downstream_nodes_are_later_and_slower() {
        let mut tree = RcTree::new();
        let r = tree.add_root(10.0);
        let a = tree.add_node(r, 200.0, 100.0);
        let b = tree.add_node(a, 200.0, 100.0);
        let c = tree.add_node(b, 200.0, 100.0);
        let solver = TransientSolver::new(&tree, 50.0, 1.2, 10.0);
        let res = solver.solve();
        assert!(res.delay50[a] < res.delay50[b]);
        assert!(res.delay50[b] < res.delay50[c]);
        assert!(res.slew[c] > res.slew[a]);
    }

    #[test]
    fn stronger_driver_is_faster() {
        let tree = lumped();
        let strong = TransientSolver::new(&tree, 55.0, 1.2, 2.0).solve();
        let weak = TransientSolver::new(&tree, 440.0, 1.2, 2.0).solve();
        assert!(strong.delay50[0] < weak.delay50[0]);
        assert!(strong.slew[0] < weak.slew[0]);
    }

    #[test]
    fn lower_vdd_changes_thresholds_not_network_delay_much() {
        // With a pure ramp source and linear RC network, delays measured at
        // proportional thresholds are supply-independent; the supply
        // dependence of stage delay enters through the derated driver
        // resistance, which the evaluator applies. Here we just confirm the
        // solver is well-behaved at both corners.
        let tree = lumped();
        let hi = TransientSolver::new(&tree, 100.0, 1.2, 2.0).solve();
        let lo = TransientSolver::new(&tree, 100.0, 1.0, 2.0).solve();
        assert!((hi.delay50[0] - lo.delay50[0]).abs() < 1.0);
    }

    #[test]
    fn branchy_tree_balances_equal_legs() {
        let mut tree = RcTree::new();
        let r = tree.add_root(5.0);
        let m = tree.add_node(r, 100.0, 50.0);
        let a = tree.add_node(m, 80.0, 60.0);
        let b = tree.add_node(m, 80.0, 60.0);
        let res = TransientSolver::new(&tree, 60.0, 1.2, 5.0).solve();
        assert!((res.delay50[a] - res.delay50[b]).abs() < 1e-6);
        assert!((res.slew[a] - res.slew[b]).abs() < 1e-6);
    }

    #[test]
    fn all_nodes_eventually_cross_ninety_percent() {
        let mut tree = RcTree::new();
        let r = tree.add_root(20.0);
        let mut prev = r;
        for _ in 0..20 {
            prev = tree.add_node(prev, 150.0, 30.0);
        }
        let res = TransientSolver::new(&tree, 80.0, 1.0, 40.0).solve();
        assert!(res.delay50.iter().all(|d| d.is_finite()));
        assert!(res.slew.iter().all(|s| s.is_finite()));
    }

    #[test]
    #[should_panic(expected = "cannot simulate an empty stage")]
    fn empty_stage_rejected() {
        let tree = RcTree::new();
        let _ = TransientSolver::new(&tree, 100.0, 1.2, 2.0);
    }
}
