//! Typed errors of the delay-evaluation substrate.
//!
//! Two failure domains exist in this crate: structural validation of a
//! [`Netlist`](crate::Netlist) and parsing of external SPICE measurement
//! output. Each gets its own enum so callers can match on exactly the
//! failures they can handle; both implement [`std::error::Error`] so they
//! compose with any error-reporting stack.

use std::fmt;

/// A structural problem found while validating a [`Netlist`](crate::Netlist).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// The root stage index is beyond the stage list.
    RootOutOfRange {
        /// The offending root index.
        root: usize,
    },
    /// The root stage is not driven by the clock source.
    RootNotSource,
    /// A stage has an empty RC tree.
    EmptyStage {
        /// Index of the empty stage.
        stage: usize,
    },
    /// A tap references an RC node beyond its stage's tree.
    TapOutOfRange {
        /// Stage holding the tap.
        stage: usize,
        /// The out-of-range RC node.
        node: usize,
    },
    /// A tap references a stage that does not exist.
    MissingStage {
        /// Stage holding the tap.
        stage: usize,
        /// The missing child stage.
        child: usize,
    },
    /// A stage's tap drives the root stage.
    RootDriven,
    /// Two taps drive the same sink.
    DuplicateSink {
        /// The doubly-driven sink id.
        sink: usize,
    },
    /// A non-root stage is never driven.
    NeverDriven {
        /// The undriven stage.
        stage: usize,
    },
    /// A non-root stage is driven more than once.
    MultiplyDriven {
        /// The multiply-driven stage.
        stage: usize,
        /// How many taps drive it.
        count: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::RootOutOfRange { root } => {
                write!(f, "root stage {root} out of range")
            }
            NetlistError::RootNotSource => {
                write!(f, "root stage must be driven by the clock source")
            }
            NetlistError::EmptyStage { stage } => {
                write!(f, "stage {stage} has an empty RC tree")
            }
            NetlistError::TapOutOfRange { stage, node } => {
                write!(f, "stage {stage} tap node {node} out of range")
            }
            NetlistError::MissingStage { stage, child } => {
                write!(f, "stage {stage} references missing stage {child}")
            }
            NetlistError::RootDriven => {
                write!(f, "the root stage cannot be driven by another stage")
            }
            NetlistError::DuplicateSink { sink } => {
                write!(f, "sink {sink} is driven more than once")
            }
            NetlistError::NeverDriven { stage } => {
                write!(f, "stage {stage} is never driven")
            }
            NetlistError::MultiplyDriven { stage, count } => {
                write!(f, "stage {stage} is driven {count} times")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A problem found while reading external SPICE measurement output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpiceError {
    /// The simulator reported a measurement as `failed`.
    MeasurementFailed {
        /// Name of the failed measurement.
        name: String,
    },
    /// A measurement value could not be parsed as a SPICE number.
    UnparsableValue {
        /// Name of the measurement.
        name: String,
        /// The unparsable token.
        value: String,
    },
    /// A sink's measurement is missing from the parsed output.
    MissingMeasurement {
        /// The sink whose timing is incomplete.
        sink: usize,
        /// Name of the missing measurement.
        name: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::MeasurementFailed { name } => {
                write!(f, "measurement '{name}' failed in the SPICE run")
            }
            SpiceError::UnparsableValue { name, value } => {
                write!(f, "measurement '{name}' has unparsable value '{value}'")
            }
            SpiceError::MissingMeasurement { sink, name } => {
                write!(f, "sink {sink}: measurement '{name}' missing")
            }
        }
    }
}

impl std::error::Error for SpiceError {}
