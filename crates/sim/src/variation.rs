//! Monte-Carlo process/voltage variation analysis.
//!
//! Section IV-H of the paper motivates buffer sliding, interleaving and
//! sizing by their effect on *robustness to variations*: the CLR metric
//! captures supply-voltage variation, but device and interconnect variation
//! also widen the effective skew. This module quantifies that widening by
//! Monte-Carlo sampling a [`Netlist`]: wire resistance/capacitance, buffer
//! drive resistance and the supply voltage are perturbed around their
//! nominal values and the network is re-evaluated for every sample.
//!
//! The sampler is deterministic (seeded, self-contained xorshift generator)
//! so experiment tables are reproducible without adding a `rand` dependency
//! to the simulation crate.

use crate::evaluator::Evaluator;
use crate::netlist::{Netlist, Stage, StageDriver};
use crate::RcTree;
use contango_tech::Technology;
use serde::{Deserialize, Serialize};

/// Relative (1-sigma) variation magnitudes applied to a netlist.
///
/// All fields are fractional sigmas: `0.05` means a 5% standard deviation of
/// the parameter around its nominal value. Samples are drawn from a normal
/// distribution truncated at ±3σ so a pathological tail cannot produce
/// negative resistances or capacitances.
///
/// The wire form of this type is NOT serde (the workspace vendors a no-op
/// serde stub): manifests carry it through
/// `contango_campaign::manifest` (`variation KEY` text codec) and JSONL /
/// protocol frames through the campaign JSON encoder, both hand-rolled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Sigma of wire resistance per stage.
    pub wire_res_sigma: f64,
    /// Sigma of wire (and pin) capacitance per stage.
    pub wire_cap_sigma: f64,
    /// Sigma of buffer output resistance (device strength) per stage.
    pub buffer_res_sigma: f64,
    /// Sigma of the supply voltage, applied chip-wide per sample, in volts.
    pub vdd_sigma: f64,
    /// Correlation of per-stage samples with a chip-wide (systematic)
    /// component, between 0 (fully independent) and 1 (fully correlated).
    pub spatial_correlation: f64,
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::typical_45nm()
    }
}

impl VariationModel {
    /// A variation model representative of a 45 nm process: 5% interconnect,
    /// 8% device strength, 20 mV supply sigma and 50% systematic component.
    pub fn typical_45nm() -> Self {
        Self {
            wire_res_sigma: 0.05,
            wire_cap_sigma: 0.05,
            buffer_res_sigma: 0.08,
            vdd_sigma: 0.02,
            spatial_correlation: 0.5,
        }
    }

    /// A model with every sigma set to zero (samples reproduce the nominal
    /// network exactly); useful for calibration and tests.
    pub fn none() -> Self {
        Self {
            wire_res_sigma: 0.0,
            wire_cap_sigma: 0.0,
            buffer_res_sigma: 0.0,
            vdd_sigma: 0.0,
            spatial_correlation: 0.0,
        }
    }

    /// Returns `true` when all sigmas are zero.
    pub fn is_zero(&self) -> bool {
        self.wire_res_sigma == 0.0
            && self.wire_cap_sigma == 0.0
            && self.buffer_res_sigma == 0.0
            && self.vdd_sigma == 0.0
    }
}

/// Summary statistics of one metric across Monte-Carlo samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricDistribution {
    /// Mean of the metric.
    pub mean: f64,
    /// Standard deviation of the metric.
    pub std_dev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// 95th-percentile value.
    pub p95: f64,
}

impl MetricDistribution {
    fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "at least one sample is required");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite metrics"));
        let p95_idx = ((0.95 * (sorted.len() as f64 - 1.0)).round() as usize).min(sorted.len() - 1);
        Self {
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            p95: sorted[p95_idx],
        }
    }
}

/// The outcome of a Monte-Carlo variation analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationReport {
    /// Number of Monte-Carlo samples evaluated.
    pub samples: usize,
    /// Distribution of nominal-corner skew across samples, ps.
    pub skew: MetricDistribution,
    /// Distribution of the Clock Latency Range across samples, ps.
    pub clr: MetricDistribution,
    /// Distribution of the maximum sink latency across samples, ps.
    pub max_latency: MetricDistribution,
    /// Fraction of samples whose skew stays below the target passed to
    /// [`monte_carlo`].
    pub skew_yield: f64,
    /// Fraction of samples without slew violations.
    pub slew_yield: f64,
}

impl VariationReport {
    /// The "effective skew": mean plus three standard deviations, the
    /// quantity a designer would sign off against.
    pub fn effective_skew(&self) -> f64 {
        self.skew.mean + 3.0 * self.skew.std_dev
    }
}

/// The metrics of one Monte-Carlo sample: the perturbed network evaluated
/// at both supply corners, reported individually so campaign-level
/// reductions (worst case across samples and corners, Pareto frontiers)
/// can consume the raw per-sample values instead of only the summary
/// statistics of [`VariationReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleMetrics {
    /// Nominal-corner skew of the sample, ps.
    pub skew: f64,
    /// Clock Latency Range of the sample, ps.
    pub clr: f64,
    /// Maximum sink latency of the sample, ps.
    pub max_latency: f64,
    /// Whether any sink slew exceeded the technology limit.
    pub slew_violation: bool,
}

/// Draws `samples` Monte-Carlo networks from `model` and returns the raw
/// per-sample metrics, in draw order.
///
/// This is the sampling loop [`monte_carlo`] summarizes: identical seeds
/// produce identical draws (per sample, the netlist perturbation is drawn
/// first, then the chip-wide supply shift), so the two functions see the
/// very same sample population.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn monte_carlo_samples(
    evaluator: &Evaluator,
    netlist: &Netlist,
    model: &VariationModel,
    samples: usize,
    seed: u64,
) -> Vec<SampleMetrics> {
    assert!(samples > 0, "at least one Monte-Carlo sample is required");
    let mut rng = XorShift::new(seed);
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let perturbed = perturb_netlist(netlist, model, &mut rng);
        let vdd_shift = truncated_normal(&mut rng) * model.vdd_sigma;
        let tech = shifted_technology(evaluator.technology(), vdd_shift);
        let corner_eval = Evaluator::with_model(tech, evaluator.model());
        let report = corner_eval.evaluate(&perturbed);
        out.push(SampleMetrics {
            skew: report.skew(),
            clr: report.clr(),
            max_latency: report.max_latency(),
            slew_violation: report.has_slew_violation(),
        });
    }
    out
}

/// Runs a Monte-Carlo variation analysis of `netlist`.
///
/// `samples` networks are drawn from `model`, each is evaluated with
/// `evaluator`'s delay model at both supply corners, and the distributions
/// of skew, CLR and insertion delay are summarized. `skew_target_ps` defines
/// the pass/fail threshold for [`VariationReport::skew_yield`].
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn monte_carlo(
    evaluator: &Evaluator,
    netlist: &Netlist,
    model: &VariationModel,
    samples: usize,
    skew_target_ps: f64,
    seed: u64,
) -> VariationReport {
    let drawn = monte_carlo_samples(evaluator, netlist, model, samples, seed);
    let skews: Vec<f64> = drawn.iter().map(|s| s.skew).collect();
    let clrs: Vec<f64> = drawn.iter().map(|s| s.clr).collect();
    let latencies: Vec<f64> = drawn.iter().map(|s| s.max_latency).collect();
    let skew_pass = drawn.iter().filter(|s| s.skew <= skew_target_ps).count();
    let slew_pass = drawn.iter().filter(|s| !s.slew_violation).count();

    VariationReport {
        samples,
        skew: MetricDistribution::from_samples(&skews),
        clr: MetricDistribution::from_samples(&clrs),
        max_latency: MetricDistribution::from_samples(&latencies),
        skew_yield: skew_pass as f64 / samples as f64,
        slew_yield: slew_pass as f64 / samples as f64,
    }
}

/// Produces one perturbed copy of `netlist`: per stage, wire resistance,
/// wire/pin capacitance and buffer drive resistance are each scaled by a
/// truncated-normal factor mixing the sample's chip-wide systematic
/// component with a per-stage local draw (weighted by
/// [`VariationModel::spatial_correlation`]).
pub fn perturb_netlist(netlist: &Netlist, model: &VariationModel, rng: &mut XorShift) -> Netlist {
    // Chip-wide systematic components shared by every stage of this sample.
    let sys_res = truncated_normal(rng);
    let sys_cap = truncated_normal(rng);
    let sys_buf = truncated_normal(rng);
    let rho = model.spatial_correlation.clamp(0.0, 1.0);
    let mix = |systematic: f64, local: f64| rho * systematic + (1.0 - rho) * local;

    let stages = netlist
        .stages
        .iter()
        .map(|stage| {
            let res_factor = factor(mix(sys_res, truncated_normal(rng)), model.wire_res_sigma);
            let cap_factor = factor(mix(sys_cap, truncated_normal(rng)), model.wire_cap_sigma);
            let buf_factor = factor(mix(sys_buf, truncated_normal(rng)), model.buffer_res_sigma);

            let mut tree = RcTree::new();
            for (idx, (parent, res, cap)) in stage.tree.iter().enumerate() {
                if idx == 0 {
                    tree.add_root(cap * cap_factor);
                } else {
                    tree.add_node(parent, res * res_factor, cap * cap_factor);
                }
            }
            let driver = match stage.driver {
                StageDriver::Source(s) => StageDriver::Source(s),
                StageDriver::Buffer(mut d) => {
                    d.output_res *= buf_factor;
                    StageDriver::Buffer(d)
                }
            };
            Stage {
                driver,
                tree,
                taps: stage.taps.clone(),
            }
        })
        .collect();
    Netlist::new(stages, netlist.root).expect("perturbation preserves netlist structure")
}

/// Converts a standard-normal sample into a multiplicative factor with the
/// given sigma, guaranteed positive.
fn factor(standard_normal: f64, sigma: f64) -> f64 {
    (1.0 + standard_normal * sigma).max(0.05)
}

/// Clones a technology with both supply corners shifted by `delta_v` volts.
pub fn shifted_technology(tech: &Technology, delta_v: f64) -> Technology {
    let mut shifted = tech.clone();
    shifted.nominal_corner.vdd = (shifted.nominal_corner.vdd + delta_v).max(0.4);
    shifted.low_corner.vdd = (shifted.low_corner.vdd + delta_v)
        .max(0.3)
        .min(shifted.nominal_corner.vdd);
    shifted
}

/// Clones a technology with both supply corners scaled by `vdd_factor` —
/// the deterministic (non-sampled) voltage half of a discrete process
/// corner, complementing the sampled shift of [`shifted_technology`].
pub fn scaled_technology(tech: &Technology, vdd_factor: f64) -> Technology {
    let mut scaled = tech.clone();
    scaled.nominal_corner.vdd = (scaled.nominal_corner.vdd * vdd_factor).max(0.4);
    scaled.low_corner.vdd = (scaled.low_corner.vdd * vdd_factor)
        .max(0.3)
        .min(scaled.nominal_corner.vdd);
    scaled
}

/// Clones `netlist` with every wire resistance and buffer drive resistance
/// scaled by `res_factor` and every node capacitance by `cap_factor` — the
/// deterministic interconnect/device half of a discrete process corner
/// (a slow corner scales both up, a fast corner scales both down).
pub fn scaled_netlist(netlist: &Netlist, res_factor: f64, cap_factor: f64) -> Netlist {
    let stages = netlist
        .stages
        .iter()
        .map(|stage| {
            let mut tree = RcTree::new();
            for (idx, (parent, res, cap)) in stage.tree.iter().enumerate() {
                if idx == 0 {
                    tree.add_root(cap * cap_factor);
                } else {
                    tree.add_node(parent, res * res_factor, cap * cap_factor);
                }
            }
            let driver = match stage.driver {
                StageDriver::Source(s) => StageDriver::Source(s),
                StageDriver::Buffer(mut d) => {
                    d.output_res *= res_factor;
                    StageDriver::Buffer(d)
                }
            };
            Stage {
                driver,
                tree,
                taps: stage.taps.clone(),
            }
        })
        .collect();
    Netlist::new(stages, netlist.root).expect("corner scaling preserves netlist structure")
}

/// A sample from the standard normal distribution truncated at ±3σ.
pub fn truncated_normal(rng: &mut XorShift) -> f64 {
    // Box–Muller transform on two uniform samples.
    loop {
        let u1 = rng.next_unit().max(1e-12);
        let u2 = rng.next_unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.abs() <= 3.0 {
            return z;
        }
    }
}

/// A small xorshift64* generator: deterministic, dependency-free and more
/// than adequate for Monte-Carlo perturbation sampling.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seeds the generator (a zero seed is mapped to a nonzero state).
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverSpec, SourceSpec};
    use crate::netlist::{Tap, TapKind};
    use crate::DelayModel;

    /// Source stage fanning out to two buffered stages, each with one sink.
    fn test_netlist() -> Netlist {
        let mut root_tree = RcTree::new();
        let r0 = root_tree.add_root(5.0);
        let r1 = root_tree.add_node(r0, 30.0, 10.0);
        let r2 = root_tree.add_node(r0, 35.0, 12.0);
        let root = Stage {
            driver: StageDriver::Source(SourceSpec::ispd09()),
            tree: root_tree,
            taps: vec![
                Tap {
                    node: r1,
                    kind: TapKind::Stage(1),
                },
                Tap {
                    node: r2,
                    kind: TapKind::Stage(2),
                },
            ],
        };
        let leaf = |sink: usize, res: f64| {
            let mut tree = RcTree::new();
            let n0 = tree.add_root(4.0);
            let n1 = tree.add_node(n0, res, 15.0);
            Stage {
                driver: StageDriver::Buffer(DriverSpec {
                    output_res: 55.0,
                    output_cap: 48.8,
                    input_cap: 33.6,
                    intrinsic_delay: 8.0,
                    inverting: true,
                }),
                tree,
                taps: vec![Tap {
                    node: n1,
                    kind: TapKind::Sink(sink),
                }],
            }
        };
        Netlist::new(vec![root, leaf(0, 40.0), leaf(1, 44.0)], 0).expect("valid")
    }

    fn evaluator() -> Evaluator {
        Evaluator::with_model(Technology::ispd09(), DelayModel::TwoPole)
    }

    #[test]
    fn zero_variation_reproduces_the_nominal_metrics() {
        let netlist = test_netlist();
        let eval = evaluator();
        let nominal = eval.evaluate(&netlist);
        let report = monte_carlo(&eval, &netlist, &VariationModel::none(), 8, 100.0, 1);
        assert_eq!(report.samples, 8);
        assert!((report.skew.std_dev).abs() < 1e-9);
        assert!((report.skew.mean - nominal.skew()).abs() < 1e-6);
        assert!((report.clr.mean - nominal.clr()).abs() < 1e-6);
        assert_eq!(report.skew_yield, 1.0);
    }

    #[test]
    fn variation_widens_the_skew_distribution() {
        let netlist = test_netlist();
        let eval = evaluator();
        let tight = monte_carlo(&eval, &netlist, &VariationModel::none(), 16, 1e9, 7);
        let wide = monte_carlo(&eval, &netlist, &VariationModel::typical_45nm(), 64, 1e9, 7);
        assert!(wide.skew.std_dev > tight.skew.std_dev);
        assert!(wide.skew.max >= wide.skew.min);
        assert!(wide.effective_skew() >= wide.skew.mean);
    }

    #[test]
    fn monte_carlo_is_deterministic_in_the_seed() {
        let netlist = test_netlist();
        let eval = evaluator();
        let model = VariationModel::typical_45nm();
        let a = monte_carlo(&eval, &netlist, &model, 32, 50.0, 42);
        let b = monte_carlo(&eval, &netlist, &model, 32, 50.0, 42);
        assert_eq!(a, b);
        let c = monte_carlo(&eval, &netlist, &model, 32, 50.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn yields_are_fractions() {
        let netlist = test_netlist();
        let eval = evaluator();
        let report = monte_carlo(&eval, &netlist, &VariationModel::typical_45nm(), 40, 0.0, 3);
        assert!(report.skew_yield >= 0.0 && report.skew_yield <= 1.0);
        assert!(report.slew_yield >= 0.0 && report.slew_yield <= 1.0);
        // A zero-ps skew target is unachievable for a physical network.
        assert_eq!(report.skew_yield, 0.0);
    }

    #[test]
    fn distribution_summary_is_consistent() {
        let d = MetricDistribution::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((d.mean - 3.0).abs() < 1e-12);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 5.0);
        assert!(d.p95 >= d.mean && d.p95 <= d.max);
        assert!(d.std_dev > 1.0 && d.std_dev < 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one Monte-Carlo sample")]
    fn zero_samples_are_rejected() {
        let netlist = test_netlist();
        let eval = evaluator();
        let _ = monte_carlo(&eval, &netlist, &VariationModel::none(), 0, 10.0, 1);
    }

    #[test]
    fn perturbation_preserves_structure() {
        let netlist = test_netlist();
        let mut rng = XorShift::new(9);
        let perturbed = perturb_netlist(&netlist, &VariationModel::typical_45nm(), &mut rng);
        assert_eq!(perturbed.len(), netlist.len());
        assert_eq!(perturbed.sink_count(), netlist.sink_count());
        for (a, b) in perturbed.stages.iter().zip(&netlist.stages) {
            assert_eq!(a.taps, b.taps);
            assert_eq!(a.tree.len(), b.tree.len());
        }
    }
}
