//! Arnoldi/AWE-style reduced-order delay models.
//!
//! The paper repeatedly notes that the SPICE evaluations in its optimization
//! loops can be replaced by "Arnoldi approximation, or any other available
//! timing analysis tool/model". This module provides that evaluator-grade
//! approximation: higher-order circuit moments of an [`RcTree`] and a
//! stable two-pole reduced-order model fitted from the first three moments
//! (the classic AWE/Padé approach with a single-pole fallback when the Padé
//! poles are unstable or complex).
//!
//! The reduced-order model produces 50% delay and 10–90% slew estimates that
//! sit between the Elmore bound and the transient solver in accuracy while
//! remaining closed-form, and is exercised by the benchmark harness as an
//! ablation of the evaluation substrate.

use crate::RcTree;

/// Higher-order delay moments of every node of an RC tree.
///
/// `moments[k][i]` is the (k+1)-th moment `m_{k+1}` of node `i`, in ps^(k+1),
/// for a step applied through `driver_res` at the driving point. The first
/// row equals [`RcTree::elmore_from`].
#[derive(Debug, Clone, PartialEq)]
pub struct Moments {
    /// Moment rows: `moments[0]` is `m1`, `moments[1]` is `m2`, …
    pub moments: Vec<Vec<f64>>,
}

impl Moments {
    /// Number of moment orders computed.
    pub fn order(&self) -> usize {
        self.moments.len()
    }

    /// The `k`-th moment (1-based: `k = 1` is the Elmore moment) of node
    /// `node`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, exceeds [`Moments::order`], or `node` is out
    /// of range.
    pub fn moment(&self, k: usize, node: usize) -> f64 {
        assert!(
            k >= 1 && k <= self.moments.len(),
            "moment order out of range"
        );
        self.moments[k - 1][node]
    }
}

/// Computes the first `order` delay moments of every node of `tree` for a
/// step applied through `driver_res` ohms.
///
/// The recursion generalizes the Elmore computation: with `m_0 ≡ 1`,
/// `m_k[i] = Σ_j R(path(i) ∩ path(j)) · C_j · m_{k-1}[j]`, evaluated with one
/// bottom-up (subtree accumulation) and one top-down (path accumulation)
/// sweep per order, so the total cost is `O(order · n)`.
///
/// # Panics
///
/// Panics if `order` is zero.
pub fn higher_moments(tree: &RcTree, driver_res: f64, order: usize) -> Moments {
    assert!(order >= 1, "at least one moment order is required");
    let n = tree.len();
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(order);
    if n == 0 {
        return Moments {
            moments: vec![Vec::new(); order],
        };
    }
    let parents: Vec<usize> = tree.iter().map(|(p, _, _)| p).collect();
    let res: Vec<f64> = tree.iter().map(|(_, r, _)| r).collect();
    let caps: Vec<f64> = tree.iter().map(|(_, _, c)| c).collect();
    let rc_to_ps = contango_tech::units::RC_TO_PS;

    let mut prev: Vec<f64> = vec![1.0; n];
    for _ in 0..order {
        // weighted[i] = Σ_{j ∈ subtree(i)} C_j · m_{k-1}[j]
        let mut weighted: Vec<f64> = (0..n).map(|i| caps[i] * prev[i]).collect();
        for i in (1..n).rev() {
            let p = parents[i];
            weighted[p] += weighted[i];
        }
        let mut row = vec![0.0; n];
        row[0] = driver_res * weighted[0] * rc_to_ps;
        for i in 1..n {
            let p = parents[i];
            row[i] = row[p] + res[i] * weighted[i] * rc_to_ps;
        }
        prev = row.clone();
        rows.push(row);
    }
    Moments { moments: rows }
}

/// A stable reduced-order model of one node's step response.
///
/// The transfer function is approximated as
/// `H(s) = k1/(s + p1) + k2/(s + p2)` (two real stable poles) or a single
/// pole when the Padé fit is unstable. The step response is then available
/// in closed form and the 50% delay and 10–90% slew are found by bisection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReducedOrderModel {
    /// First pole (1/ps, positive means stable).
    p1: f64,
    /// Second pole (1/ps); equals `p1` for a single-pole model.
    p2: f64,
    /// Residue of the first pole (normalized so the step settles at 1).
    k1: f64,
    /// Residue of the second pole.
    k2: f64,
    /// Whether the two-pole Padé fit succeeded.
    two_pole: bool,
}

impl ReducedOrderModel {
    /// Fits a reduced-order model from the first three moments of a node.
    ///
    /// Moments follow the sign convention of [`higher_moments`]: all are
    /// positive for an RC tree. When the quadratic Padé denominator has
    /// complex or non-positive roots the fit falls back to a single pole at
    /// `1/m1`, which reproduces the Elmore delay exactly.
    pub fn fit(m1: f64, m2: f64, m3: f64) -> Self {
        let single = Self {
            p1: if m1 > 0.0 { 1.0 / m1 } else { f64::INFINITY },
            p2: if m1 > 0.0 { 1.0 / m1 } else { f64::INFINITY },
            k1: 1.0,
            k2: 0.0,
            two_pole: false,
        };
        if m1 <= 0.0 || m2 <= 0.0 || m3 <= 0.0 {
            return single;
        }
        // With the moment convention m_k = Σ R C m_{k-1} (all positive), the
        // transfer-function moments are µ_k = (−1)^k m_k. Matching
        // H(s) ≈ (a0 + a1 s) / (1 + b1 s + b2 s²) against µ0…µ3 gives the
        // standard AWE normal equations
        //   b2 + µ1 b1 = −µ2
        //   µ1 b2 + µ2 b1 = −µ3
        // whose solution in terms of the positive m_k is:
        let det = m2 - m1 * m1;
        if det.abs() < 1e-18 {
            return single;
        }
        let b2 = (m1 * m3 - m2 * m2) / det;
        let b1 = (m3 - m1 * m2) / det;
        // Poles are roots of b2 s² + b1 s + 1 = 0; stability needs both
        // roots real and negative, i.e. b1, b2 > 0 and b1² ≥ 4 b2.
        if !(b1.is_finite() && b2.is_finite()) || b1 <= 0.0 || b2 <= 0.0 {
            return single;
        }
        let disc = b1 * b1 - 4.0 * b2;
        if disc < 0.0 {
            return single;
        }
        let sqrt_disc = disc.sqrt();
        let s1 = (-b1 + sqrt_disc) / (2.0 * b2);
        let s2 = (-b1 - sqrt_disc) / (2.0 * b2);
        if s1 >= 0.0 || s2 >= 0.0 {
            return single;
        }
        let p1 = -s1;
        let p2 = -s2;
        // Residues from matching the zeroth and first moments:
        //   k1/p1 + k2/p2 = 1           (DC gain)
        //   k1/p1² + k2/p2² = m1        (first moment)
        let Some((k1, k2)) = solve_residues(p1, p2, m1) else {
            return single;
        };
        if !(k1.is_finite() && k2.is_finite()) {
            return single;
        }
        Self {
            p1,
            p2,
            k1,
            k2,
            two_pole: true,
        }
    }

    /// Whether the full two-pole fit was used (false means the Elmore-style
    /// single-pole fallback).
    pub fn is_two_pole(&self) -> bool {
        self.two_pole
    }

    /// Normalized step response at time `t` (ps); rises from 0 towards 1.
    pub fn step_response(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        if !self.two_pole {
            return 1.0 - (-self.p1 * t).exp();
        }
        let v = 1.0
            - self.k1 / self.p1 * (-self.p1 * t).exp()
            - self.k2 / self.p2 * (-self.p2 * t).exp();
        v.clamp(0.0, 1.0)
    }

    /// Time (ps) at which the step response crosses `threshold` ∈ (0, 1).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `(0, 1)`.
    pub fn crossing_time(&self, threshold: f64) -> f64 {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0, 1)"
        );
        if !self.two_pole {
            return -(1.0 - threshold).ln() / self.p1;
        }
        // Bisection on a bracket that certainly contains the crossing.
        let mut lo = 0.0;
        let mut hi = 10.0 / self.p1.min(self.p2);
        while self.step_response(hi) < threshold {
            hi *= 2.0;
            if hi > 1e12 {
                return hi;
            }
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.step_response(mid) < threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// 50% delay of the step response, in ps.
    pub fn delay(&self) -> f64 {
        self.crossing_time(0.5)
    }

    /// 10%–90% slew of the step response, in ps.
    pub fn slew(&self) -> f64 {
        self.crossing_time(0.9) - self.crossing_time(0.1)
    }
}

/// Solves the residue system `k1/p1 + k2/p2 = 1`, `k1/p1² + k2/p2² = m1`.
fn solve_residues(p1: f64, p2: f64, m1: f64) -> Option<(f64, f64)> {
    let a11 = 1.0 / p1;
    let a12 = 1.0 / p2;
    let a21 = 1.0 / (p1 * p1);
    let a22 = 1.0 / (p2 * p2);
    let det = a11 * a22 - a12 * a21;
    if det.abs() < 1e-18 {
        return None;
    }
    let k1 = (1.0 * a22 - a12 * m1) / det;
    let k2 = (a11 * m1 - a21 * 1.0) / det;
    Some((k1, k2))
}

/// Convenience: fits reduced-order models for every node of `tree`.
///
/// Returns one model per node, computed from the first three moments with
/// driver resistance `driver_res`.
pub fn reduced_order_models(tree: &RcTree, driver_res: f64) -> Vec<ReducedOrderModel> {
    let m = higher_moments(tree, driver_res, 3);
    (0..tree.len())
        .map(|i| ReducedOrderModel::fit(m.moment(1, i), m.moment(2, i), m.moment(3, i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single RC segment: R = 100 Ω into C = 100 fF (τ = 10 ps).
    fn single_rc() -> RcTree {
        let mut t = RcTree::new();
        let n0 = t.add_root(0.0);
        t.add_node(n0, 100.0, 100.0);
        t
    }

    /// A ladder of ten equal RC sections.
    fn ladder(sections: usize) -> RcTree {
        let mut t = RcTree::new();
        let mut prev = t.add_root(5.0);
        for _ in 0..sections {
            prev = t.add_node(prev, 40.0, 25.0);
        }
        t
    }

    #[test]
    fn first_moment_matches_elmore() {
        let tree = ladder(10);
        let m = higher_moments(&tree, 80.0, 3);
        let elmore = tree.elmore_from(80.0);
        for (i, &elmore_i) in elmore.iter().enumerate() {
            assert!((m.moment(1, i) - elmore_i).abs() < 1e-12);
        }
    }

    #[test]
    fn second_moment_matches_existing_computation() {
        let tree = ladder(6);
        let m = higher_moments(&tree, 55.0, 2);
        let (_, m2) = tree.moments_from(55.0);
        for (i, &m2_i) in m2.iter().enumerate() {
            assert!((m.moment(2, i) - m2_i).abs() < 1e-9);
        }
    }

    #[test]
    fn moments_grow_with_order_on_rc_ladders() {
        let tree = ladder(8);
        let m = higher_moments(&tree, 100.0, 4);
        let last = tree.len() - 1;
        // For τ >> 1 ps the higher moments dominate: m2 > m1, m3 > m2 etc.
        assert!(m.moment(2, last) > m.moment(1, last));
        assert!(m.moment(3, last) > m.moment(2, last));
        assert!(m.moment(4, last) > m.moment(3, last));
    }

    #[test]
    fn single_rc_reduces_to_exponential() {
        let tree = single_rc();
        // Zero driver resistance: node 1 sees a pure RC with τ = 10 ps.
        let models = reduced_order_models(&tree, 0.0);
        let model = &models[1];
        let tau = 10.0;
        // 50% delay of a single exponential is τ·ln2.
        assert!((model.delay() - tau * std::f64::consts::LN_2).abs() / tau < 0.05);
        // 10-90 slew is τ·ln9.
        assert!((model.slew() - tau * 9f64.ln()).abs() / tau < 0.08);
    }

    #[test]
    fn two_pole_delay_is_bounded_by_the_elmore_moment() {
        let tree = ladder(12);
        let driver = 61.2;
        let elmore = tree.elmore_from(driver);
        let models = reduced_order_models(&tree, driver);
        for i in 1..tree.len() {
            let d = models[i].delay();
            assert!(d.is_finite() && d > 0.0);
            // The first moment m1 is a proven upper bound on the 50% delay
            // of a monotone RC step response (and ln2·m1 a common estimate);
            // the reduced-order delay must respect the m1 bound and stay
            // within the same order of magnitude as the estimate.
            assert!(
                d <= elmore[i] + 1e-9,
                "node {i}: reduced-order {d} vs m1 bound {}",
                elmore[i]
            );
            assert!(d >= 0.2 * std::f64::consts::LN_2 * elmore[i]);
        }
    }

    #[test]
    fn far_nodes_are_slower_than_near_nodes() {
        let tree = ladder(10);
        let models = reduced_order_models(&tree, 100.0);
        let mut prev = 0.0;
        for model in models.iter().skip(1) {
            let d = model.delay();
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn step_response_is_monotone_and_bounded() {
        let tree = ladder(5);
        let models = reduced_order_models(&tree, 200.0);
        let model = models[tree.len() - 1];
        let mut prev = 0.0;
        for step in 0..200 {
            let t = step as f64 * 2.0;
            let v = model.step_response(t);
            assert!((0.0..=1.0).contains(&v));
            // The residue fit may introduce a tiny non-monotonicity near
            // t = 0; anything visible would indicate an unstable fit.
            assert!(v >= prev - 1e-3, "response must be (near-)monotone");
            prev = v;
        }
        assert!(model.step_response(1e9) > 0.999);
    }

    #[test]
    fn degenerate_moments_fall_back_to_single_pole() {
        let model = ReducedOrderModel::fit(10.0, 0.0, 0.0);
        assert!(!model.is_two_pole());
        assert!((model.delay() - 10.0 * std::f64::consts::LN_2).abs() < 1e-9);
        let zero = ReducedOrderModel::fit(0.0, 0.0, 0.0);
        assert!(!zero.is_two_pole());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn crossing_time_rejects_bad_threshold() {
        let model = ReducedOrderModel::fit(10.0, 150.0, 2500.0);
        let _ = model.crossing_time(1.5);
    }

    #[test]
    fn empty_tree_yields_empty_moments() {
        let tree = RcTree::new();
        let m = higher_moments(&tree, 100.0, 3);
        assert_eq!(m.order(), 3);
        assert!(m.moments.iter().all(|row| row.is_empty()));
    }
}
