//! Multi-corner clock-network evaluation.
//!
//! The evaluator plays the role of the SPICE runs in the paper's flow
//! (Figure 1, "Clock-Network Evaluation"): it propagates rising and falling
//! transitions from the clock source through every buffered stage and
//! reports per-sink latencies and slews at both supply corners, from which
//! skew, Clock Latency Range and slew violations are derived.

use crate::driver::DriverSpec;
use crate::models::{analytic_tap_timing, DelayModel};
use crate::netlist::{Netlist, StageDriver, TapKind};
use crate::report::{CornerReport, EvalReport, SinkTiming, TransitionTiming};
use crate::transient::TransientSolver;
use contango_tech::Technology;
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Options controlling an evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalOptions {
    /// Delay model to use.
    pub model: DelayModel,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self {
            model: DelayModel::Transient,
        }
    }
}

/// State of one transition edge arriving at a stage's driver input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct EdgeState {
    /// Arrival time relative to the corresponding source edge, in ps.
    pub(crate) arrival: f64,
    /// 10%–90% slew of the transition, in ps.
    pub(crate) slew: f64,
}

/// Rising and falling edge state at one point of the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct NodeState {
    pub(crate) rise: EdgeState,
    pub(crate) fall: EdgeState,
}

/// Timing of one output transition at one tap, relative to the arrival of
/// the causing input edge. Adding the input arrival yields the absolute
/// arrival, so these are the cacheable per-stage quantities: they depend on
/// the stage content, the supply corner, the transition direction and the
/// input slew — but not on when the input edge arrives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RelTiming {
    /// Stage delay (gate delay plus network delay), in ps.
    pub(crate) delay: f64,
    /// 10%–90% output slew at the tap, in ps.
    pub(crate) slew: f64,
}

/// The clock-network evaluator ("circuit simulation tool" of the paper).
///
/// The evaluator counts how many times [`Evaluator::evaluate`] has been
/// called; the flow reports this as the number of SPICE runs (Table V of the
/// paper counts the same quantity).
#[derive(Debug, Clone)]
pub struct Evaluator {
    tech: Technology,
    options: EvalOptions,
    runs: Cell<usize>,
}

impl Evaluator {
    /// Creates an evaluator with the default (transient) delay model.
    pub fn new(tech: Technology) -> Self {
        Self::with_options(tech, EvalOptions::default())
    }

    /// Creates an evaluator with explicit options.
    pub fn with_options(tech: Technology, options: EvalOptions) -> Self {
        Self {
            tech,
            options,
            runs: Cell::new(0),
        }
    }

    /// Creates an evaluator using a specific delay model.
    pub fn with_model(tech: Technology, model: DelayModel) -> Self {
        Self::with_options(tech, EvalOptions { model })
    }

    /// The technology this evaluator uses.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The delay model in use.
    pub fn model(&self) -> DelayModel {
        self.options.model
    }

    /// Number of evaluations performed so far (the "SPICE run" count).
    pub fn runs(&self) -> usize {
        self.runs.get()
    }

    /// Resets the evaluation counter.
    pub fn reset_runs(&self) {
        self.runs.set(0);
    }

    /// Counts one "SPICE run" (used by the incremental evaluator, whose
    /// evaluations must share this counter).
    pub(crate) fn count_run(&self) {
        self.runs.set(self.runs.get() + 1);
    }

    /// Evaluates the netlist at both supply corners.
    pub fn evaluate(&self, netlist: &Netlist) -> EvalReport {
        self.count_run();
        let nominal = self.evaluate_corner(netlist, self.tech.nominal_corner.vdd);
        let low = self.evaluate_corner(netlist, self.tech.low_corner.vdd);
        EvalReport {
            nominal,
            low,
            total_cap: netlist.total_cap(),
            slew_limit: self.tech.slew_limit,
            buffer_count: netlist.buffer_count(),
        }
    }

    /// Evaluates the netlist at a single supply corner.
    fn evaluate_corner(&self, netlist: &Netlist, vdd: f64) -> CornerReport {
        let order = netlist.topological_order();
        let mut inputs: Vec<Option<NodeState>> = vec![None; netlist.len()];
        inputs[netlist.root] = Some(NodeState {
            rise: EdgeState {
                arrival: 0.0,
                slew: source_slew(netlist),
            },
            fall: EdgeState {
                arrival: 0.0,
                slew: source_slew(netlist),
            },
        });

        let mut sinks: Vec<SinkTiming> = Vec::new();
        let mut max_slew = 0.0_f64;

        for si in order {
            let stage = &netlist.stages[si];
            let input = inputs[si].expect("topological order guarantees inputs are known");
            let driver = stage.driver.spec();
            let inverting = stage.driver.inverting();
            let is_source = stage.driver.is_source();

            // Output rising edge is caused by the input falling edge for an
            // inverter, by the input rising edge otherwise; and vice versa.
            let (in_for_rise, in_for_fall) = if inverting {
                (input.fall, input.rise)
            } else {
                (input.rise, input.fall)
            };

            let taps = stage.taps.iter().map(|t| t.node);
            let rise_rel = self.stage_rel_outputs(
                &stage.tree,
                taps.clone(),
                &driver,
                is_source,
                vdd,
                true,
                in_for_rise.slew,
            );
            let fall_rel = self.stage_rel_outputs(
                &stage.tree,
                taps,
                &driver,
                is_source,
                vdd,
                false,
                in_for_fall.slew,
            );
            let rise_out: Vec<EdgeState> = rise_rel
                .iter()
                .map(|t| EdgeState {
                    arrival: in_for_rise.arrival + t.delay,
                    slew: t.slew,
                })
                .collect();
            let fall_out: Vec<EdgeState> = fall_rel
                .iter()
                .map(|t| EdgeState {
                    arrival: in_for_fall.arrival + t.delay,
                    slew: t.slew,
                })
                .collect();

            let mut sink_latest: Vec<(usize, TransitionTiming, TransitionTiming)> = Vec::new();
            for (tap_idx, tap) in stage.taps.iter().enumerate() {
                let r = rise_out[tap_idx];
                let f = fall_out[tap_idx];
                max_slew = max_slew.max(r.slew).max(f.slew);
                match tap.kind {
                    TapKind::Sink(id) => {
                        sink_latest.push((
                            id,
                            TransitionTiming {
                                latency: r.arrival,
                                slew: r.slew,
                            },
                            TransitionTiming {
                                latency: f.arrival,
                                slew: f.slew,
                            },
                        ));
                    }
                    TapKind::Stage(child) => {
                        inputs[child] = Some(NodeState { rise: r, fall: f });
                    }
                }
            }
            for (id, rise, fall) in sink_latest {
                sinks.push(SinkTiming {
                    sink_id: id,
                    rise,
                    fall,
                });
            }
        }

        sinks.sort_by_key(|s| s.sink_id);
        CornerReport {
            vdd,
            sinks,
            max_slew,
        }
    }

    /// Computes, for the given tap nodes of a stage's RC tree, the delay and
    /// slew of the requested output transition relative to the causing input
    /// edge's arrival.
    ///
    /// This is the single stage-solving primitive shared by the full
    /// evaluation above and by [`crate::incremental::IncrementalEvaluator`]'s
    /// cached path, which guarantees the two produce bit-identical timing
    /// for identical inputs.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn stage_rel_outputs(
        &self,
        tree: &crate::RcTree,
        taps: impl Iterator<Item = usize>,
        driver: &DriverSpec,
        is_source: bool,
        vdd: f64,
        output_rising: bool,
        input_slew: f64,
    ) -> Vec<RelTiming> {
        // The clock source sits off-chip: it does not derate with the
        // on-chip supply and has no rise/fall asymmetry.
        let (res, intrinsic) = if is_source {
            (driver.output_res, 0.0)
        } else {
            (
                driver.corner_res(&self.tech, vdd, output_rising),
                driver.corner_intrinsic(&self.tech, vdd),
            )
        };
        let gate_delay = intrinsic + crate::driver::SLEW_DELAY_SENSITIVITY * input_slew;

        match self.options.model {
            DelayModel::Elmore | DelayModel::TwoPole => {
                let two_pole = self.options.model == DelayModel::TwoPole;
                let (m1, m2) = tree.moments_from(res);
                taps.map(|node| {
                    let t =
                        analytic_tap_timing(m1[node], m2[node], intrinsic, input_slew, two_pole);
                    RelTiming {
                        delay: t.delay,
                        slew: t.slew,
                    }
                })
                .collect()
            }
            DelayModel::Transient => {
                // The gate output ramp steepens with a stronger driver and
                // degrades with a slow input edge.
                let intrinsic_ramp =
                    2.0 * contango_tech::units::rc_ps(res, driver.output_cap.max(1.0));
                let ramp = (intrinsic_ramp + 0.4 * input_slew).max(2.0);
                let solver = TransientSolver::new(tree, res, vdd, ramp);
                let result = solver.solve();
                taps.map(|node| RelTiming {
                    delay: gate_delay + result.delay50[node],
                    slew: result.slew[node],
                })
                .collect()
            }
        }
    }
}

/// Slew of the clock source waveform.
fn source_slew(netlist: &Netlist) -> f64 {
    match netlist.stages[netlist.root].driver {
        StageDriver::Source(s) => s.slew,
        StageDriver::Buffer(_) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::SourceSpec;
    use crate::netlist::{Stage, Tap};
    use crate::RcTree;

    /// Source → trunk wire → inverter → two symmetric sink branches, with an
    /// optional extra wire on sink 1 to create skew.
    fn two_sink_netlist(extra_len_res: f64, extra_cap: f64) -> Netlist {
        let tech = Technology::ispd09();
        let buf = tech.composite(tech.small_inverter(), 8);
        let d = DriverSpec::from_composite(&buf);

        let mut t0 = RcTree::new();
        let r0 = t0.add_root(1.0);
        let trunk = t0.add_node(r0, 120.0, 60.0 + d.input_cap);
        let stage0 = Stage {
            driver: StageDriver::Source(SourceSpec::ispd09()),
            tree: t0,
            taps: vec![Tap {
                node: trunk,
                kind: TapKind::Stage(1),
            }],
        };

        let mut t1 = RcTree::new();
        let r1 = t1.add_root(d.output_cap);
        let a = t1.add_node(r1, 60.0, 35.0);
        let b = t1.add_node(r1, 60.0 + extra_len_res, 35.0 + extra_cap);
        let stage1 = Stage {
            driver: StageDriver::Buffer(d),
            tree: t1,
            taps: vec![
                Tap {
                    node: a,
                    kind: TapKind::Sink(0),
                },
                Tap {
                    node: b,
                    kind: TapKind::Sink(1),
                },
            ],
        };
        Netlist::new(vec![stage0, stage1], 0).expect("valid netlist")
    }

    #[test]
    fn symmetric_netlist_has_negligible_skew() {
        let netlist = two_sink_netlist(0.0, 0.0);
        for model in [
            DelayModel::Elmore,
            DelayModel::TwoPole,
            DelayModel::Transient,
        ] {
            let eval = Evaluator::with_model(Technology::ispd09(), model);
            let report = eval.evaluate(&netlist);
            assert!(
                report.skew() < 1e-6,
                "model {model:?} skew {}",
                report.skew()
            );
            assert!(report.clr() > 0.0, "CLR must be positive");
        }
    }

    #[test]
    fn asymmetric_load_creates_skew_in_every_model() {
        let netlist = two_sink_netlist(300.0, 40.0);
        for model in [
            DelayModel::Elmore,
            DelayModel::TwoPole,
            DelayModel::Transient,
        ] {
            let eval = Evaluator::with_model(Technology::ispd09(), model);
            let report = eval.evaluate(&netlist);
            assert!(
                report.skew() > 1.0,
                "model {model:?} skew {}",
                report.skew()
            );
            // Sink 1 carries the extra wire, so it must be the slow one.
            let nominal = &report.nominal;
            let s0 = nominal.sink(0).expect("sink 0");
            let s1 = nominal.sink(1).expect("sink 1");
            assert!(s1.rise.latency > s0.rise.latency);
        }
    }

    #[test]
    fn low_corner_latencies_exceed_nominal() {
        let netlist = two_sink_netlist(0.0, 0.0);
        let eval = Evaluator::new(Technology::ispd09());
        let report = eval.evaluate(&netlist);
        assert!(report.low.max_latency() > report.nominal.max_latency());
    }

    #[test]
    fn run_counter_increments() {
        let netlist = two_sink_netlist(0.0, 0.0);
        let eval = Evaluator::new(Technology::ispd09());
        assert_eq!(eval.runs(), 0);
        let _ = eval.evaluate(&netlist);
        let _ = eval.evaluate(&netlist);
        assert_eq!(eval.runs(), 2);
        eval.reset_runs();
        assert_eq!(eval.runs(), 0);
    }

    #[test]
    fn transient_and_two_pole_agree_on_ordering() {
        let netlist = two_sink_netlist(500.0, 80.0);
        let spice =
            Evaluator::with_model(Technology::ispd09(), DelayModel::Transient).evaluate(&netlist);
        let awe =
            Evaluator::with_model(Technology::ispd09(), DelayModel::TwoPole).evaluate(&netlist);
        let slow_spice = spice.nominal.sink(1).expect("sink").rise.latency
            > spice.nominal.sink(0).expect("sink").rise.latency;
        let slow_awe = awe.nominal.sink(1).expect("sink").rise.latency
            > awe.nominal.sink(0).expect("sink").rise.latency;
        assert_eq!(slow_spice, slow_awe);
    }

    #[test]
    fn inverter_stage_swaps_rise_and_fall_paths() {
        // With an odd number of inversions, the rise latency at the sink is
        // driven by the pull-up of the last inverter; asymmetry makes rise
        // and fall latencies differ slightly.
        let netlist = two_sink_netlist(0.0, 0.0);
        let eval = Evaluator::new(Technology::ispd09());
        let report = eval.evaluate(&netlist);
        let s0 = report.nominal.sink(0).expect("sink 0");
        assert!((s0.rise.latency - s0.fall.latency).abs() > 1e-6);
    }

    #[test]
    fn slew_is_reported_and_bounded_for_reasonable_stages() {
        let netlist = two_sink_netlist(0.0, 0.0);
        let eval = Evaluator::new(Technology::ispd09());
        let report = eval.evaluate(&netlist);
        assert!(report.worst_slew() > 0.0);
        assert!(!report.has_slew_violation(), "slew {}", report.worst_slew());
    }
}
