//! Delay-evaluation substrate for clock-network synthesis.
//!
//! The Contango paper drives its optimizations with SPICE (ngSPICE for the
//! ISPD'09 contest, HSPICE for the scalability study) and explicitly notes
//! that "any accurate delay evaluator can be used, including FastSpice,
//! Arnoldi approximations, etc." This crate is that evaluator: it provides
//! three delay models of increasing accuracy over the same
//! [`RcTree`]/[`Netlist`] representation and a multi-corner
//! [`Evaluator`] that produces the metrics the optimizations consume —
//! per-sink latency and slew for rising and falling transitions at both
//! supply corners, nominal skew, Clock Latency Range (CLR), slew violations
//! and total capacitance.
//!
//! | Model | Description | Used for |
//! |---|---|---|
//! | [`DelayModel::Elmore`] | first-moment delay, `ln 2 · m₁` | initial tree construction, fast buffering |
//! | [`DelayModel::TwoPole`] | D2M two-moment metric with moment-matched slew | quick what-if analysis |
//! | [`DelayModel::Transient`] | backward-Euler transient solve of each buffered stage with a ramped Thevenin driver | "SPICE-accurate" optimization loops |
//!
//! The transient solver exploits the tree structure of every buffered stage
//! to solve each timestep in `O(n)`, so full-network evaluations remain fast
//! enough to sit inside Contango's iterative optimization loops even for
//! 50 000-sink networks.
//!
//! # Example
//!
//! ```
//! use contango_sim::{RcTree, DelayModel};
//!
//! // A 1 mm wire driven through 100 Ω: node 0 is the driving point.
//! let mut tree = RcTree::new();
//! let n0 = tree.add_root(10.0);
//! let n1 = tree.add_node(n0, 40.0, 50.0);
//! let n2 = tree.add_node(n1, 40.0, 70.0);
//! let elmore = tree.elmore_from(100.0);
//! assert!(elmore[n2] > elmore[n1]);
//! assert!(DelayModel::Elmore.is_analytic());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arnoldi;
mod driver;
mod error;
mod evaluator;
pub mod incremental;
mod models;
mod netlist;
mod rctree;
mod report;
pub mod spice;
pub mod store;
mod transient;
pub mod variation;

pub use arnoldi::{higher_moments, reduced_order_models, Moments, ReducedOrderModel};
pub use driver::{DriverSpec, SourceSpec, RISE_FALL_ASYMMETRY, SLEW_DELAY_SENSITIVITY};
pub use error::{NetlistError, SpiceError};
pub use evaluator::{EvalOptions, Evaluator};
pub use incremental::{
    CacheStats, IncrementalEvaluator, LocalTap, LocalTapKind, LoweredStage, SigBuilder, StageSig,
    StageSlot,
};
pub use models::DelayModel;
pub use netlist::{Netlist, Stage, StageDriver, Tap, TapKind};
pub use rctree::RcTree;
pub use report::{CornerReport, EvalReport, SinkTiming, TransitionTiming};
pub use spice::{parse_measurements, report_from_measurements, write_deck, DeckOptions};
pub use store::{
    ByteReader, ByteWriter, CacheCounters, CacheStore, HitTier, StoreError, StoreKey, NS_CONSTRUCT,
    NS_SOLVE, NS_STAGE,
};
pub use transient::{TransientResult, TransientSolver};
pub use variation::{
    monte_carlo, monte_carlo_samples, perturb_netlist, scaled_netlist, scaled_technology,
    shifted_technology, truncated_normal, MetricDistribution, SampleMetrics, VariationModel,
    VariationReport, XorShift,
};
