//! Evaluation reports: per-sink timing, skew, CLR and violation checks.

use serde::{Deserialize, Serialize};

/// Timing of one transition (rising or falling) at a sink.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionTiming {
    /// Source-to-sink latency in ps.
    pub latency: f64,
    /// 10%–90% slew at the sink in ps.
    pub slew: f64,
}

/// Timing of one sink at one supply corner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SinkTiming {
    /// Sink identifier (as used in the netlist).
    pub sink_id: usize,
    /// Rising-transition timing.
    pub rise: TransitionTiming,
    /// Falling-transition timing.
    pub fall: TransitionTiming,
}

impl SinkTiming {
    /// The larger of the rise and fall latencies.
    pub fn max_latency(&self) -> f64 {
        self.rise.latency.max(self.fall.latency)
    }

    /// The smaller of the rise and fall latencies.
    pub fn min_latency(&self) -> f64 {
        self.rise.latency.min(self.fall.latency)
    }

    /// The larger of the rise and fall slews.
    pub fn max_slew(&self) -> f64 {
        self.rise.slew.max(self.fall.slew)
    }
}

/// Evaluation results at one supply corner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornerReport {
    /// Supply voltage of this corner, in volts.
    pub vdd: f64,
    /// Per-sink timing, sorted by sink id.
    pub sinks: Vec<SinkTiming>,
    /// Worst 10%–90% slew observed anywhere in the network (including
    /// internal buffer inputs), in ps.
    pub max_slew: f64,
}

impl CornerReport {
    /// Largest sink latency over both transitions, in ps.
    pub fn max_latency(&self) -> f64 {
        self.sinks
            .iter()
            .map(SinkTiming::max_latency)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest sink latency over both transitions, in ps.
    pub fn min_latency(&self) -> f64 {
        self.sinks
            .iter()
            .map(SinkTiming::min_latency)
            .fold(f64::INFINITY, f64::min)
    }

    /// Skew of the rising transition (max − min rise latency), in ps.
    pub fn rise_skew(&self) -> f64 {
        span(self.sinks.iter().map(|s| s.rise.latency))
    }

    /// Skew of the falling transition (max − min fall latency), in ps.
    pub fn fall_skew(&self) -> f64 {
        span(self.sinks.iter().map(|s| s.fall.latency))
    }

    /// Skew of this corner: the larger of the rise and fall skews. The two
    /// transitions are kept separate, as in Section III-B of the paper.
    pub fn skew(&self) -> f64 {
        self.rise_skew().max(self.fall_skew())
    }

    /// Timing of a specific sink, if present.
    pub fn sink(&self, sink_id: usize) -> Option<&SinkTiming> {
        self.sinks.iter().find(|s| s.sink_id == sink_id)
    }
}

fn span<I: Iterator<Item = f64>>(values: I) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut any = false;
    for v in values {
        any = true;
        min = min.min(v);
        max = max.max(v);
    }
    if any {
        max - min
    } else {
        0.0
    }
}

/// A complete multi-corner evaluation of a clock network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Nominal-corner (high-supply) results.
    pub nominal: CornerReport,
    /// Low-supply-corner results.
    pub low: CornerReport,
    /// Total network capacitance in fF.
    pub total_cap: f64,
    /// Slew limit in force during the evaluation, in ps.
    pub slew_limit: f64,
    /// Number of buffer stages in the evaluated netlist.
    pub buffer_count: usize,
}

impl EvalReport {
    /// Nominal skew (at the nominal corner), in ps.
    pub fn skew(&self) -> f64 {
        self.nominal.skew()
    }

    /// Clock Latency Range: largest sink latency at the low-supply corner
    /// minus smallest sink latency at the nominal (high-supply) corner, the
    /// ISPD'09 contest objective.
    pub fn clr(&self) -> f64 {
        self.low.max_latency() - self.nominal.min_latency()
    }

    /// Largest nominal-corner sink latency (insertion delay), in ps.
    pub fn max_latency(&self) -> f64 {
        self.nominal.max_latency()
    }

    /// Worst slew at either corner, in ps.
    pub fn worst_slew(&self) -> f64 {
        self.nominal.max_slew.max(self.low.max_slew)
    }

    /// Returns `true` when any slew at any corner exceeds the slew limit.
    pub fn has_slew_violation(&self) -> bool {
        self.worst_slew() > self.slew_limit + 1e-9
    }

    /// Number of sinks covered by the report.
    pub fn sink_count(&self) -> usize {
        self.nominal.sinks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(latency: f64, slew: f64) -> TransitionTiming {
        TransitionTiming { latency, slew }
    }

    fn corner(vdd: f64, latencies: &[(f64, f64)], max_slew: f64) -> CornerReport {
        CornerReport {
            vdd,
            sinks: latencies
                .iter()
                .enumerate()
                .map(|(i, &(r, f))| SinkTiming {
                    sink_id: i,
                    rise: timing(r, 40.0),
                    fall: timing(f, 42.0),
                })
                .collect(),
            max_slew,
        }
    }

    #[test]
    fn skew_is_max_of_rise_and_fall_skews() {
        let c = corner(1.2, &[(100.0, 101.0), (105.0, 109.0)], 50.0);
        assert!((c.rise_skew() - 5.0).abs() < 1e-12);
        assert!((c.fall_skew() - 8.0).abs() < 1e-12);
        assert!((c.skew() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn clr_spans_corners() {
        let nominal = corner(1.2, &[(100.0, 100.0), (104.0, 104.0)], 50.0);
        let low = corner(1.0, &[(118.0, 118.0), (123.0, 123.0)], 60.0);
        let report = EvalReport {
            nominal,
            low,
            total_cap: 1000.0,
            slew_limit: 100.0,
            buffer_count: 3,
        };
        assert!((report.clr() - 23.0).abs() < 1e-12);
        assert!((report.skew() - 4.0).abs() < 1e-12);
        assert!(!report.has_slew_violation());
        assert_eq!(report.sink_count(), 2);
    }

    #[test]
    fn slew_violation_detected_at_either_corner() {
        let nominal = corner(1.2, &[(100.0, 100.0)], 80.0);
        let low = corner(1.0, &[(110.0, 110.0)], 120.0);
        let report = EvalReport {
            nominal,
            low,
            total_cap: 10.0,
            slew_limit: 100.0,
            buffer_count: 0,
        };
        assert!(report.has_slew_violation());
        assert!((report.worst_slew() - 120.0).abs() < 1e-12);
    }

    #[test]
    fn empty_corner_has_zero_skew() {
        let c = CornerReport {
            vdd: 1.2,
            sinks: vec![],
            max_slew: 0.0,
        };
        assert_eq!(c.skew(), 0.0);
    }

    #[test]
    fn sink_lookup_by_id() {
        let c = corner(1.2, &[(100.0, 100.0), (105.0, 106.0)], 50.0);
        assert!(c.sink(1).is_some());
        assert!(c.sink(9).is_none());
        assert!((c.sink(1).expect("exists").max_latency() - 106.0).abs() < 1e-12);
    }
}
