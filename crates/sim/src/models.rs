//! Delay-model selection and analytic (moment-based) stage timing.

use crate::driver::{SLEW_DELAY_SENSITIVITY, SLEW_PROPAGATION};
use contango_tech::units;
use serde::{Deserialize, Serialize};

/// The delay model used when evaluating a clock network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DelayModel {
    /// First-moment (Elmore) delay with single-pole slew. Fast and
    /// pessimistic; used during initial tree construction and buffering.
    Elmore,
    /// Two-moment D2M delay metric with moment-matched slew. A good proxy
    /// for the Arnoldi/AWE approximations mentioned in the paper.
    TwoPole,
    /// Backward-Euler transient simulation of every stage ("SPICE-accurate"
    /// in this reproduction). The default for optimization loops.
    #[default]
    Transient,
}

impl DelayModel {
    /// Returns `true` for closed-form (non-simulating) models.
    pub fn is_analytic(self) -> bool {
        !matches!(self, DelayModel::Transient)
    }
}

/// Timing of one tap of a stage: delay from the driver's input switching to
/// the tap crossing 50%, and the 10%–90% output slew at the tap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TapTiming {
    /// Stage delay in ps (gate delay plus network delay).
    pub delay: f64,
    /// Output slew at the tap in ps.
    pub slew: f64,
}

/// Computes analytic (moment-based) tap timing for a stage.
///
/// * `m1`, `m2` — first/second delay moments at the tap for the stage's RC
///   tree driven through the corner-derated driver resistance.
/// * `gate_intrinsic` — corner-derated intrinsic delay of the driver.
/// * `input_slew` — 10–90% slew of the transition at the driver input.
/// * `use_two_pole` — selects the D2M metric instead of pure Elmore.
pub fn analytic_tap_timing(
    m1: f64,
    m2: f64,
    gate_intrinsic: f64,
    input_slew: f64,
    use_two_pole: bool,
) -> TapTiming {
    let network_delay = if use_two_pole && m2 > 0.0 {
        // D2M metric: ln2 · m1² / sqrt(m2); never exceeds the Elmore delay
        // and tracks SPICE much better for far-downstream nodes.
        (units::DELAY_LN2 * m1 * m1 / m2.sqrt()).min(units::DELAY_LN2 * m1)
    } else {
        units::DELAY_LN2 * m1
    };
    let step_slew = if use_two_pole && m2 > 0.0 {
        // Effective time constant from matched moments; for a single pole
        // m2 = m1² and this reduces to ln9 · m1.
        units::SLEW_LN9 * m2.sqrt().max(m1 * 0.5)
    } else {
        units::SLEW_LN9 * m1
    };
    let gate_delay = gate_intrinsic + SLEW_DELAY_SENSITIVITY * input_slew;
    let slew = (step_slew * step_slew + (SLEW_PROPAGATION * input_slew).powi(2)).sqrt();
    TapTiming {
        delay: gate_delay + network_delay,
        slew,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_transient() {
        assert_eq!(DelayModel::default(), DelayModel::Transient);
        assert!(!DelayModel::Transient.is_analytic());
        assert!(DelayModel::Elmore.is_analytic());
        assert!(DelayModel::TwoPole.is_analytic());
    }

    #[test]
    fn elmore_timing_scales_with_first_moment() {
        let a = analytic_tap_timing(10.0, 120.0, 5.0, 20.0, false);
        let b = analytic_tap_timing(20.0, 480.0, 5.0, 20.0, false);
        assert!(b.delay > a.delay);
        assert!(b.slew > a.slew);
    }

    #[test]
    fn d2m_never_exceeds_elmore() {
        for (m1, m2) in [(10.0, 60.0), (25.0, 400.0), (40.0, 2400.0)] {
            let elmore = analytic_tap_timing(m1, m2, 0.0, 0.0, false);
            let d2m = analytic_tap_timing(m1, m2, 0.0, 0.0, true);
            assert!(d2m.delay <= elmore.delay + 1e-12);
        }
    }

    #[test]
    fn input_slew_increases_delay_and_output_slew() {
        let clean = analytic_tap_timing(10.0, 120.0, 5.0, 0.0, true);
        let slow = analytic_tap_timing(10.0, 120.0, 5.0, 80.0, true);
        assert!(slow.delay > clean.delay);
        assert!(slow.slew > clean.slew);
    }

    #[test]
    fn single_pole_limit_matches_ln_constants() {
        // When m2 = m1², the two-pole model reduces to a single pole.
        let m1 = 10.0;
        let t = analytic_tap_timing(m1, m1 * m1, 0.0, 0.0, true);
        assert!((t.delay - units::DELAY_LN2 * m1).abs() < 1e-9);
        assert!((t.slew - units::SLEW_LN9 * m1).abs() < 1e-9);
    }
}
