//! Incremental stage-level evaluation with content-addressed caching.
//!
//! Every round of Contango's optimization passes mutates a handful of tree
//! edges and re-evaluates. A full evaluation re-lowers every stage and
//! re-simulates each of them at both supply corners, even though all but the
//! mutated stages (and their downstream cone, whose input slews shift) are
//! unchanged. The [`IncrementalEvaluator`] makes each evaluation proportional
//! to the size of the change instead:
//!
//! * every stage is identified by a 128-bit **content signature**
//!   ([`StageSig`]) over everything that affects its lowered electrical form
//!   — driver electricals, wire lengths/widths, snaking, sink and
//!   downstream-input capacitance, and the in-stage tree shape;
//! * lowered stages ([`LoweredStage`]) are cached by signature, so only
//!   stages whose nodes changed are re-lowered by the caller;
//! * per-stage transition solves are cached by `(supply, direction, input
//!   slew)`. A stage is re-solved only when it is new **or** an upstream
//!   change altered the slew arriving at its driver — exactly the downstream
//!   cone of the mutation. Arrival-time shifts alone are propagated by
//!   addition, without re-solving.
//!
//! With evaluation incremental, tree *construction* dominates what is left
//! of flow runtime; the complementary construction engine lives in
//! `contango_core::construct` (see `docs/architecture.md` at the
//! repository root).
//!
//! Because cached solves are produced by the same
//! `Evaluator::stage_rel_outputs` primitive the full evaluation uses, an
//! incremental report is bit-identical to a full re-evaluation of the same
//! tree — a property the workspace enforces with equivalence tests rather
//! than trusting the cache keys.
//!
//! "SPICE run" counting is preserved: one [`IncrementalEvaluator::
//! evaluate_slots`] call increments the shared run counter by one, cache
//! hits notwithstanding, so Table-V-style reporting is unchanged.

use crate::evaluator::{EdgeState, EvalOptions, Evaluator, NodeState, RelTiming};
use crate::netlist::StageDriver;
use crate::report::{CornerReport, EvalReport, SinkTiming, TransitionTiming};
use crate::store::{ByteReader, ByteWriter, CacheCounters, CacheStore, StoreKey};
use crate::{DelayModel, DriverSpec, RcTree, SourceSpec};
use contango_tech::Technology;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Cached entries untouched for this many evaluations are evicted; rollbacks
/// in the optimization passes reach at most a few evaluations back, so this
/// keeps rejected-round stages warm while bounding memory.
const KEEP_GENERATIONS: u64 = 32;

/// Upper bound on cached transition solves per stage. A stage in steady
/// state sees four keys (two corners × two directions); stages downstream
/// of a repeatedly mutated region accumulate a new input slew per
/// evaluation, and without a bound their solve maps would grow for the
/// flow's lifetime. Clearing a full map costs one redundant solve round for
/// that stage — negligible at this size.
const MAX_SOLVES_PER_STAGE: usize = 64;

/// 128-bit content signature of one lowered stage.
///
/// Two stages with the same signature lower to the same electrical stage and
/// therefore share cache entries (symmetric clock trees routinely contain
/// electrically identical stages, which the cache deduplicates for free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageSig {
    lo: u64,
    hi: u64,
}

/// Streaming hasher producing a [`StageSig`] from the content walk of a
/// stage. Two independent 64-bit streams (FNV-1a and a splitmix-style
/// multiplier) make accidental collisions across a flow's lifetime
/// negligible.
#[derive(Debug, Clone)]
pub struct SigBuilder {
    lo: u64,
    hi: u64,
}

impl SigBuilder {
    /// Starts a new signature.
    pub fn new() -> Self {
        Self {
            lo: 0xcbf2_9ce4_8422_2325,
            hi: 0x6c62_272e_07bb_0142,
        }
    }

    /// Mixes one 64-bit word into both streams.
    pub fn write_u64(&mut self, v: u64) {
        self.lo = (self.lo ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        self.lo ^= self.lo >> 32;
        self.hi = (self.hi ^ v.rotate_left(32)).wrapping_mul(0x2545_f491_4f6c_dd1d);
        self.hi ^= self.hi >> 29;
    }

    /// Mixes a float by bit pattern (`-0.0` and `0.0` hash differently,
    /// which errs on the side of re-lowering).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Mixes a small tag discriminating record kinds within the walk.
    pub fn write_tag(&mut self, tag: u8) {
        self.write_u64(u64::from(tag));
    }

    /// Mixes an index-sized integer.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Mixes a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(u64::from(v));
    }

    /// Finalizes the signature.
    pub fn finish(&self) -> StageSig {
        StageSig {
            lo: self.lo,
            hi: self.hi,
        }
    }
}

impl StageSig {
    /// The raw `(lo, hi)` halves of the signature — the content address
    /// used as a persistent [`StoreKey`].
    pub fn parts(self) -> (u64, u64) {
        (self.lo, self.hi)
    }
}

impl Default for SigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// What a tap of an isolated stage feeds, in stage-local terms: global stage
/// indices shift when the tree's structure changes, so cached stages refer
/// to their downstream stages by tap ordinal instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalTapKind {
    /// A clock sink with the given sink id.
    Sink(usize),
    /// The `k`-th downstream stage fed by this stage (in lowering order);
    /// resolved to a global stage index through [`StageSlot::children`].
    Child(usize),
}

/// A tap of an isolated stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalTap {
    /// Node index within the stage's [`RcTree`].
    pub node: usize,
    /// What the tap feeds.
    pub kind: LocalTapKind,
}

/// One stage lowered in isolation: the cacheable unit of incremental
/// evaluation.
#[derive(Debug, Clone)]
pub struct LoweredStage {
    /// The stage's driver.
    pub driver: StageDriver,
    /// The RC tree driven by the driver (node 0 is the driver output).
    pub tree: RcTree,
    /// The taps of this stage, in lowering order.
    pub taps: Vec<LocalTap>,
}

/// One stage of an incremental evaluation request. Slot 0 is the root
/// (source-driven) stage; `children[k]` is the slot index of the stage a
/// `LocalTapKind::Child(k)` tap feeds.
#[derive(Debug, Clone)]
pub struct StageSlot {
    /// Content signature of the stage.
    pub sig: StageSig,
    /// Slot indices of the downstream stages, by tap ordinal.
    pub children: Vec<usize>,
    /// The freshly lowered stage; `None` when
    /// [`IncrementalEvaluator::is_cached`] reported the signature as already
    /// cached, in which case the cached lowering is reused.
    pub fresh: Option<LoweredStage>,
}

/// Key of one cached per-stage transition solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SolveKey {
    vdd: u64,
    rising: bool,
    input_slew: u64,
}

/// A cached stage: its lowering plus every transition solve seen so far.
#[derive(Debug, Clone)]
struct CachedStage {
    stage: LoweredStage,
    total_cap: f64,
    solves: HashMap<SolveKey, Vec<RelTiming>>,
    last_used: u64,
}

/// Cache statistics of an [`IncrementalEvaluator`], for tests, logging and
/// benchmark reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Stage lookups answered from the cache (no re-lowering needed).
    pub stage_hits: u64,
    /// Stage lookups that required a fresh lowering.
    pub stage_misses: u64,
    /// Stage lowerings loaded from an attached persistent store; each load
    /// turns what would have been a re-lowering into a memory hit.
    pub stage_disk_hits: u64,
    /// Transition solves answered from the cache.
    pub solve_hits: u64,
    /// Transition solves that ran the stage solver.
    pub solve_misses: u64,
    /// Of the `solve_hits`, those answered from an attached persistent
    /// store rather than the in-memory solve maps.
    pub solve_disk_hits: u64,
    /// In-memory entries discarded by bounds: stages aged out past
    /// `KEEP_GENERATIONS`, plus solves dropped when a stage's solve map
    /// hits `MAX_SOLVES_PER_STAGE` and is cleared.
    pub evictions: u64,
}

/// An attached persistent store plus the evaluation-context fingerprint
/// mixed into its solve keys. Stage signatures cover everything that
/// affects a stage's lowered form (including the wire codes and buffer
/// electricals actually used), so stage payloads are keyed by signature
/// alone; solve results additionally depend on the delay model and the
/// technology's derating context, which the fingerprint captures.
#[derive(Debug, Clone)]
struct StoreBinding {
    store: Arc<CacheStore>,
    fingerprint: StageSig,
}

/// Deterministic per-job cache accounting: simulates the lookups a *cold,
/// dedicated* evaluator would make for this job against the store's
/// open-time snapshot. Unlike the observed [`CacheStats`] — which depend on
/// which jobs warmed this evaluator earlier — the profile is a pure
/// function of (job, snapshot), so the counters reported per job are
/// byte-identical for every worker count and session-pool size.
#[derive(Debug, Default)]
struct JobProfile {
    gen: u64,
    counters: CacheCounters,
    /// Stage signatures this job has looked up, by last-used generation
    /// (mirrors the in-memory cache's `last_used` aging).
    stage_seen: HashMap<StageSig, u64>,
    /// Solve keys this job has looked up.
    solve_seen: HashSet<(StageSig, SolveKey)>,
    /// Distinct solves per stage, for simulating the solve-map bound.
    solve_counts: HashMap<StageSig, usize>,
}

impl JobProfile {
    fn classify_stage(&mut self, sig: StageSig, binding: Option<&StoreBinding>) {
        match self.stage_seen.entry(sig) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                self.counters.mem_hits += 1;
                *e.get_mut() = self.gen;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                if binding.is_some_and(|b| b.store.contains_snapshot(stage_store_key(sig))) {
                    self.counters.disk_hits += 1;
                } else {
                    self.counters.misses += 1;
                }
                v.insert(self.gen);
            }
        }
    }

    fn classify_solve(&mut self, sig: StageSig, key: SolveKey, binding: Option<&StoreBinding>) {
        if self.solve_seen.contains(&(sig, key)) {
            self.counters.mem_hits += 1;
            return;
        }
        let count = self.solve_counts.get(&sig).copied().unwrap_or(0);
        if count >= MAX_SOLVES_PER_STAGE {
            let mut cleared = 0u64;
            self.solve_seen.retain(|(s, _)| {
                let keep = *s != sig;
                if !keep {
                    cleared += 1;
                }
                keep
            });
            self.counters.evictions += cleared;
            self.solve_counts.insert(sig, 0);
        }
        let on_disk = binding.is_some_and(|b| {
            b.store
                .contains_snapshot(solve_store_key(sig, b.fingerprint, key))
        });
        if on_disk {
            self.counters.disk_hits += 1;
        } else {
            self.counters.misses += 1;
        }
        self.solve_seen.insert((sig, key));
        *self.solve_counts.entry(sig).or_insert(0) += 1;
    }

    /// Mirrors the end-of-evaluation generation aging of the in-memory
    /// cache: stages unused for `KEEP_GENERATIONS` evaluations are dropped
    /// (together with their solves) and counted as evictions.
    fn end_evaluation(&mut self) {
        let gen = self.gen;
        let mut removed: HashSet<StageSig> = HashSet::new();
        self.stage_seen.retain(|sig, last| {
            let keep = *last + KEEP_GENERATIONS >= gen;
            if !keep {
                removed.insert(*sig);
            }
            keep
        });
        if removed.is_empty() {
            return;
        }
        self.counters.evictions += removed.len() as u64;
        self.solve_seen.retain(|(s, _)| !removed.contains(s));
        for sig in &removed {
            self.solve_counts.remove(sig);
        }
    }
}

/// A persistent, cache-backed clock-network evaluator.
///
/// Wraps a full [`Evaluator`] (sharing its "SPICE run" counter, so run
/// accounting is identical whichever path produced a report) and adds the
/// per-stage caches described in the module docs. Callers lower stages
/// through `contango_core::lower`, which asks [`Self::is_cached`] before
/// lowering so unchanged stages are never re-lowered.
///
/// With a [`CacheStore`] attached (see [`Self::attach_store`]), cache
/// misses additionally consult the store's on-disk entries, and fresh
/// lowerings and solves are appended to it — so results survive process
/// restarts and are shared across concurrent workers. Stored payloads are
/// bit-exact (`f64`s round-trip by bit pattern), so a warm run's reports
/// are byte-identical to a cold run's.
#[derive(Debug)]
pub struct IncrementalEvaluator {
    inner: Evaluator,
    cache: RefCell<HashMap<StageSig, CachedStage>>,
    generation: Cell<u64>,
    stats: Cell<CacheStats>,
    store: RefCell<Option<StoreBinding>>,
    profile: RefCell<Option<JobProfile>>,
}

impl IncrementalEvaluator {
    /// Creates an incremental evaluator with the default (transient) model.
    pub fn new(tech: Technology) -> Self {
        Self::from_evaluator(Evaluator::new(tech))
    }

    /// Creates an incremental evaluator with explicit options.
    pub fn with_options(tech: Technology, options: EvalOptions) -> Self {
        Self::from_evaluator(Evaluator::with_options(tech, options))
    }

    /// Creates an incremental evaluator using a specific delay model.
    pub fn with_model(tech: Technology, model: crate::DelayModel) -> Self {
        Self::from_evaluator(Evaluator::with_model(tech, model))
    }

    /// Wraps an existing full evaluator (its run counter is shared).
    pub fn from_evaluator(inner: Evaluator) -> Self {
        Self {
            inner,
            cache: RefCell::new(HashMap::new()),
            generation: Cell::new(0),
            stats: Cell::new(CacheStats::default()),
            store: RefCell::new(None),
            profile: RefCell::new(None),
        }
    }

    /// Attaches a persistent store: from now on, stage and solve misses
    /// consult the store and fresh results are appended to it. Replaces any
    /// previously attached store.
    pub fn attach_store(&self, store: Arc<CacheStore>) {
        let fingerprint = context_fingerprint(&self.inner);
        *self.store.borrow_mut() = Some(StoreBinding { store, fingerprint });
    }

    /// Detaches the persistent store, if any.
    pub fn detach_store(&self) {
        *self.store.borrow_mut() = None;
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<Arc<CacheStore>> {
        self.store.borrow().as_ref().map(|b| b.store.clone())
    }

    /// Starts deterministic cache accounting for one job. The subsequent
    /// [`Self::take_job_profile`] returns counters that simulate a cold,
    /// dedicated evaluator running the job against the attached store's
    /// open-time snapshot — independent of worker scheduling. A no-op
    /// (profiling stays off) when no store is attached.
    pub fn begin_job_profile(&self) {
        let enabled = self.store.borrow().is_some();
        *self.profile.borrow_mut() = enabled.then(JobProfile::default);
    }

    /// Finishes the current job profile and returns its counters (zeros
    /// when no profile was running).
    pub fn take_job_profile(&self) -> CacheCounters {
        self.profile
            .borrow_mut()
            .take()
            .map(|p| p.counters)
            .unwrap_or_default()
    }

    /// The wrapped full evaluator — the escape hatch for callers that need a
    /// plain netlist evaluation (construction-time code, verification).
    /// Runs through it count against the same "SPICE run" counter.
    pub fn evaluator(&self) -> &Evaluator {
        &self.inner
    }

    /// Draws seeded Monte-Carlo variation samples of `netlist` through this
    /// evaluator's technology and delay model (see
    /// [`crate::variation::monte_carlo_samples`]). Sample evaluations run in
    /// per-sample throwaway evaluators (each sample shifts the supply, so
    /// none can reuse this evaluator's caches) and do not touch the shared
    /// "SPICE run" counter — Table-V-style run counts stay comparable
    /// between variation-aware and nominal-only campaigns.
    pub fn variation_samples(
        &self,
        netlist: &crate::Netlist,
        model: &crate::variation::VariationModel,
        samples: usize,
        seed: u64,
    ) -> Vec<crate::variation::SampleMetrics> {
        crate::variation::monte_carlo_samples(&self.inner, netlist, model, samples, seed)
    }

    /// The technology in use.
    pub fn technology(&self) -> &Technology {
        self.inner.technology()
    }

    /// The delay model in use.
    pub fn model(&self) -> crate::DelayModel {
        self.inner.model()
    }

    /// Number of evaluations performed so far (the "SPICE run" count),
    /// incremental and full alike.
    pub fn runs(&self) -> usize {
        self.inner.runs()
    }

    /// Resets the run counter.
    pub fn reset_runs(&self) {
        self.inner.reset_runs();
    }

    /// Returns `true` when a stage with this signature is already cached (in
    /// which case [`StageSlot::fresh`] may be `None`).
    ///
    /// With a store attached, a memory miss additionally probes the store
    /// and, on success, installs the decoded lowering in the in-memory
    /// cache — this is how persisted stages avoid re-lowering entirely. A
    /// payload that fails to decode behaves as a plain miss (the caller
    /// re-lowers and the entry is rewritten).
    pub fn is_cached(&self, sig: StageSig) -> bool {
        if self.cache.borrow().contains_key(&sig) {
            return true;
        }
        let binding = self.store.borrow();
        let Some(binding) = binding.as_ref() else {
            return false;
        };
        let Some((payload, _tier)) = binding.store.get(stage_store_key(sig)) else {
            return false;
        };
        let Some(stage) = decode_stage(&payload) else {
            return false;
        };
        let total_cap = stage.tree.total_cap();
        let mut stats = self.stats.get();
        stats.stage_disk_hits += 1;
        self.stats.set(stats);
        self.cache.borrow_mut().insert(
            sig,
            CachedStage {
                stage,
                total_cap,
                solves: HashMap::new(),
                // Not yet used by an evaluation; pin it to the upcoming
                // generation so it cannot age out before the evaluation
                // that asked for it runs.
                last_used: self.generation.get() + 1,
            },
        );
        true
    }

    /// Number of distinct stages currently cached.
    pub fn cached_stages(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Cache statistics accumulated since construction (or the last
    /// [`Self::reset_stats`]).
    pub fn stats(&self) -> CacheStats {
        self.stats.get()
    }

    /// Resets the cache statistics.
    pub fn reset_stats(&self) {
        self.stats.set(CacheStats::default());
    }

    /// Drops every cached stage and solve.
    pub fn clear_cache(&self) {
        self.cache.borrow_mut().clear();
    }

    /// Evaluates a clock network presented as stage slots (slot 0 = the
    /// source-driven root stage) at both supply corners.
    ///
    /// Counts as exactly one "SPICE run" regardless of how much of the work
    /// was answered from the caches.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty, or a slot has `fresh == None` for a
    /// signature the cache does not hold (a caller contract violation), or a
    /// child index is out of range.
    pub fn evaluate_slots(&self, slots: Vec<StageSlot>) -> EvalReport {
        assert!(!slots.is_empty(), "cannot evaluate an empty stage list");
        self.inner.count_run();
        let gen = self.generation.get() + 1;
        self.generation.set(gen);
        let mut stats = self.stats.get();
        let binding_ref = self.store.borrow();
        let binding = binding_ref.as_ref();
        let mut profile_ref = self.profile.borrow_mut();
        let profile = &mut *profile_ref;
        if let Some(p) = profile.as_mut() {
            p.gen += 1;
        }

        let mut cache = self.cache.borrow_mut();
        let mut meta: Vec<(StageSig, Vec<usize>)> = Vec::with_capacity(slots.len());
        // Per-slot stage capacitance, captured while the cache entry is in
        // hand. Summed in slot order — the same order `Netlist::total_cap`
        // sums per-stage subtotals — so the total is bit-identical to the
        // full path.
        let mut total_cap = 0.0_f64;
        for slot in slots {
            if let Some(p) = profile.as_mut() {
                p.classify_stage(slot.sig, binding);
            }
            match cache.entry(slot.sig) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let entry = e.get_mut();
                    entry.last_used = gen;
                    total_cap += entry.total_cap;
                    stats.stage_hits += 1;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    let stage = slot
                        .fresh
                        .expect("stages missing from the cache must be lowered by the caller");
                    if let Some(b) = binding {
                        // Cache write failures degrade to a smaller cache,
                        // never to a failed evaluation.
                        let _ = b
                            .store
                            .put(stage_store_key(slot.sig), &encode_stage(&stage));
                    }
                    let stage_cap = stage.tree.total_cap();
                    total_cap += stage_cap;
                    v.insert(CachedStage {
                        stage,
                        total_cap: stage_cap,
                        solves: HashMap::new(),
                        last_used: gen,
                    });
                    stats.stage_misses += 1;
                }
            }
            meta.push((slot.sig, slot.children));
        }

        let tech = self.inner.technology();
        let (nominal_vdd, low_vdd) = (tech.nominal_corner.vdd, tech.low_corner.vdd);
        let slew_limit = tech.slew_limit;
        let nominal =
            self.evaluate_corner(&mut cache, &mut stats, binding, profile, &meta, nominal_vdd);
        let low = self.evaluate_corner(&mut cache, &mut stats, binding, profile, &meta, low_vdd);
        let buffer_count = meta.len().saturating_sub(1);

        cache.retain(|_, e| {
            let keep = e.last_used + KEEP_GENERATIONS >= gen;
            if !keep {
                stats.evictions += 1;
            }
            keep
        });
        if let Some(p) = profile.as_mut() {
            p.end_evaluation();
        }
        self.stats.set(stats);

        EvalReport {
            nominal,
            low,
            total_cap,
            slew_limit,
            buffer_count,
        }
    }

    /// Evaluates one supply corner over the cached stages, mirroring
    /// `Evaluator::evaluate_corner` step for step.
    fn evaluate_corner(
        &self,
        cache: &mut HashMap<StageSig, CachedStage>,
        stats: &mut CacheStats,
        binding: Option<&StoreBinding>,
        profile: &mut Option<JobProfile>,
        meta: &[(StageSig, Vec<usize>)],
        vdd: f64,
    ) -> CornerReport {
        let n = meta.len();
        let source_slew = match cache[&meta[0].0].stage.driver {
            StageDriver::Source(s) => s.slew,
            // `Netlist::validate` rejects buffer-driven roots on the full
            // path; fail just as loudly here.
            StageDriver::Buffer(_) => panic!("root stage must be driven by the clock source"),
        };
        let mut inputs: Vec<Option<NodeState>> = vec![None; n];
        inputs[0] = Some(NodeState {
            rise: EdgeState {
                arrival: 0.0,
                slew: source_slew,
            },
            fall: EdgeState {
                arrival: 0.0,
                slew: source_slew,
            },
        });

        let mut sinks: Vec<SinkTiming> = Vec::new();
        let mut max_slew = 0.0_f64;
        // Per-slot drive tracking, mirroring `Netlist::validate`'s `driven`
        // array: a doubly-driven slot fails at the offending tap, and the
        // final count catches undriven slots.
        let mut driven = vec![false; n];
        driven[0] = true;
        let mut visited = 0usize;
        let mut stack = vec![0usize];
        while let Some(si) = stack.pop() {
            visited += 1;
            let input = inputs[si].expect("stage order guarantees inputs are known");
            let entry = cache
                .get_mut(&meta[si].0)
                .expect("every slot was installed above");
            let inverting = entry.stage.driver.inverting();
            let (in_for_rise, in_for_fall) = if inverting {
                (input.fall, input.rise)
            } else {
                (input.rise, input.fall)
            };

            let rise_out = Self::transition_outputs(
                &self.inner,
                stats,
                binding,
                profile,
                meta[si].0,
                entry,
                vdd,
                true,
                in_for_rise,
            );
            let fall_out = Self::transition_outputs(
                &self.inner,
                stats,
                binding,
                profile,
                meta[si].0,
                entry,
                vdd,
                false,
                in_for_fall,
            );

            // Children are pushed in tap order and popped LIFO — the same
            // traversal `Netlist::topological_order` produces.
            let mut pushed: Vec<usize> = Vec::new();
            for (tap_idx, tap) in entry.stage.taps.iter().enumerate() {
                let r = rise_out[tap_idx];
                let f = fall_out[tap_idx];
                max_slew = max_slew.max(r.slew).max(f.slew);
                match tap.kind {
                    LocalTapKind::Sink(id) => {
                        sinks.push(SinkTiming {
                            sink_id: id,
                            rise: TransitionTiming {
                                latency: r.arrival,
                                slew: r.slew,
                            },
                            fall: TransitionTiming {
                                latency: f.arrival,
                                slew: f.slew,
                            },
                        });
                    }
                    LocalTapKind::Child(k) => {
                        let child = meta[si].1[k];
                        assert!(
                            !driven[child],
                            "stage slot {child} is driven more than once"
                        );
                        driven[child] = true;
                        pushed.push(child);
                        inputs[child] = Some(NodeState { rise: r, fall: f });
                    }
                }
            }
            stack.extend(pushed);
        }

        // The structural checks `Netlist::new` performs on the full path,
        // preserved here so malformed slot graphs fail loudly instead of
        // producing silently wrong reports: every stage driven exactly once
        // (checked per tap above) and no sink or stage left undriven.
        assert_eq!(
            visited, n,
            "stage slots do not form a tree: only {visited} of {n} stages are driven"
        );
        sinks.sort_by_key(|s| s.sink_id);
        for pair in sinks.windows(2) {
            assert_ne!(
                pair[0].sink_id, pair[1].sink_id,
                "sink {} is driven more than once",
                pair[0].sink_id
            );
        }
        CornerReport {
            vdd,
            sinks,
            max_slew,
        }
    }

    /// Returns the absolute output edge state at every tap of a cached
    /// stage, solving the stage only when this `(supply, direction, input
    /// slew)` combination has not been seen before — in this process (the
    /// in-memory solve map) or any earlier one (the attached store).
    #[allow(clippy::too_many_arguments)]
    fn transition_outputs(
        evaluator: &Evaluator,
        stats: &mut CacheStats,
        binding: Option<&StoreBinding>,
        profile: &mut Option<JobProfile>,
        sig: StageSig,
        entry: &mut CachedStage,
        vdd: f64,
        output_rising: bool,
        input: EdgeState,
    ) -> Vec<EdgeState> {
        let key = SolveKey {
            vdd: vdd.to_bits(),
            rising: output_rising,
            input_slew: input.slew.to_bits(),
        };
        if let Some(p) = profile.as_mut() {
            p.classify_solve(sig, key, binding);
        }
        // Bound the per-stage solve map before taking an entry; the extra
        // lookup only runs in the rare at-capacity case.
        if entry.solves.len() >= MAX_SOLVES_PER_STAGE && !entry.solves.contains_key(&key) {
            stats.evictions += entry.solves.len() as u64;
            entry.solves.clear();
        }
        // Split borrows: the solve entry holds `solves` mutably while the
        // solver reads the stage.
        let CachedStage { stage, solves, .. } = entry;
        let rel = match solves.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                stats.solve_hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                let stored = binding.and_then(|b| {
                    let store_key = solve_store_key(sig, b.fingerprint, key);
                    let (payload, _tier) = b.store.get(store_key)?;
                    decode_solves(&payload, stage.taps.len())
                });
                match stored {
                    Some(rel) => {
                        stats.solve_hits += 1;
                        stats.solve_disk_hits += 1;
                        v.insert(rel)
                    }
                    None => {
                        stats.solve_misses += 1;
                        let driver = stage.driver.spec();
                        let rel = evaluator.stage_rel_outputs(
                            &stage.tree,
                            stage.taps.iter().map(|t| t.node),
                            &driver,
                            stage.driver.is_source(),
                            vdd,
                            output_rising,
                            input.slew,
                        );
                        if let Some(b) = binding {
                            let store_key = solve_store_key(sig, b.fingerprint, key);
                            let _ = b.store.put(store_key, &encode_solves(&rel));
                        }
                        v.insert(rel)
                    }
                }
            }
        };
        rel.iter()
            .map(|t| EdgeState {
                arrival: input.arrival + t.delay,
                slew: t.slew,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Persistent-store keys and payload codecs
// ---------------------------------------------------------------------------

/// The store key of a lowered stage: its content signature, verbatim.
fn stage_store_key(sig: StageSig) -> StoreKey {
    let (lo, hi) = sig.parts();
    StoreKey::new(crate::store::NS_STAGE, lo, hi)
}

/// The store key of one transition solve: stage signature, evaluation
/// fingerprint and solve key, mixed through the signature hasher.
fn solve_store_key(sig: StageSig, fingerprint: StageSig, key: SolveKey) -> StoreKey {
    let mut b = SigBuilder::new();
    let (slo, shi) = sig.parts();
    b.write_u64(slo);
    b.write_u64(shi);
    let (flo, fhi) = fingerprint.parts();
    b.write_u64(flo);
    b.write_u64(fhi);
    b.write_u64(key.vdd);
    b.write_bool(key.rising);
    b.write_u64(key.input_slew);
    let (lo, hi) = b.finish().parts();
    StoreKey::new(crate::store::NS_SOLVE, lo, hi)
}

/// Fingerprint of everything a transition solve depends on *besides* the
/// stage content and the solve key: the delay model and the technology's
/// voltage-derating context. Mixed into every solve store key so stores
/// shared across models or technologies never serve each other's solves.
fn context_fingerprint(evaluator: &Evaluator) -> StageSig {
    let tech = evaluator.technology();
    let mut b = SigBuilder::new();
    b.write_tag(match evaluator.model() {
        DelayModel::Elmore => 0,
        DelayModel::TwoPole => 1,
        DelayModel::Transient => 2,
    });
    b.write_f64(tech.threshold_voltage);
    b.write_f64(tech.alpha);
    b.write_f64(tech.nominal_corner.vdd);
    b.write_f64(tech.slew_limit);
    b.finish()
}

/// Encodes a [`LoweredStage`] for the store (little-endian, floats by bit
/// pattern; see [`ByteWriter`]).
fn encode_stage(stage: &LoweredStage) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match stage.driver {
        StageDriver::Source(s) => {
            w.put_u8(0);
            w.put_f64(s.output_res);
            w.put_f64(s.slew);
        }
        StageDriver::Buffer(d) => {
            w.put_u8(1);
            w.put_f64(d.output_res);
            w.put_f64(d.output_cap);
            w.put_f64(d.input_cap);
            w.put_f64(d.intrinsic_delay);
            w.put_bool(d.inverting);
        }
    }
    w.put_usize(stage.tree.len());
    for (parent, res, cap) in stage.tree.iter() {
        w.put_usize(parent);
        w.put_f64(res);
        w.put_f64(cap);
    }
    w.put_usize(stage.taps.len());
    for tap in &stage.taps {
        w.put_usize(tap.node);
        match tap.kind {
            LocalTapKind::Sink(id) => {
                w.put_u8(0);
                w.put_usize(id);
            }
            LocalTapKind::Child(k) => {
                w.put_u8(1);
                w.put_usize(k);
            }
        }
    }
    w.finish()
}

/// Decodes a stage payload; `None` (a cold miss, never a panic) on any
/// structural inconsistency.
fn decode_stage(payload: &[u8]) -> Option<LoweredStage> {
    let mut r = ByteReader::new(payload);
    let driver = match r.take_u8()? {
        0 => StageDriver::Source(SourceSpec {
            output_res: r.take_f64()?,
            slew: r.take_f64()?,
        }),
        1 => StageDriver::Buffer(DriverSpec {
            output_res: r.take_f64()?,
            output_cap: r.take_f64()?,
            input_cap: r.take_f64()?,
            intrinsic_delay: r.take_f64()?,
            inverting: r.take_bool()?,
        }),
        _ => return None,
    };
    let node_count = r.take_usize()?;
    let mut tree = RcTree::new();
    for i in 0..node_count {
        let parent = r.take_usize()?;
        let res = r.take_f64()?;
        let cap = r.take_f64()?;
        if i == 0 {
            if parent != usize::MAX {
                return None;
            }
            tree.add_root(cap);
        } else {
            if parent >= i {
                return None;
            }
            tree.add_node(parent, res, cap);
        }
    }
    let tap_count = r.take_usize()?;
    let mut taps = Vec::new();
    for _ in 0..tap_count {
        let node = r.take_usize()?;
        if node >= node_count {
            return None;
        }
        let kind = match r.take_u8()? {
            0 => LocalTapKind::Sink(r.take_usize()?),
            1 => LocalTapKind::Child(r.take_usize()?),
            _ => return None,
        };
        taps.push(LocalTap { node, kind });
    }
    r.is_done().then_some(LoweredStage { driver, tree, taps })
}

/// Encodes one transition solve (the per-tap relative timings).
fn encode_solves(rel: &[RelTiming]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_usize(rel.len());
    for t in rel {
        w.put_f64(t.delay);
        w.put_f64(t.slew);
    }
    w.finish()
}

/// Decodes a transition-solve payload; the tap count must match the cached
/// stage's, or the payload is rejected as a cold miss.
fn decode_solves(payload: &[u8], expected_taps: usize) -> Option<Vec<RelTiming>> {
    let mut r = ByteReader::new(payload);
    if r.take_usize()? != expected_taps {
        return None;
    }
    let mut rel = Vec::with_capacity(expected_taps.min(1024));
    for _ in 0..expected_taps {
        rel.push(RelTiming {
            delay: r.take_f64()?,
            slew: r.take_f64()?,
        });
    }
    r.is_done().then_some(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverSpec, SourceSpec};
    use crate::netlist::{Netlist, Stage, Tap, TapKind};

    /// Source → trunk wire → inverter → two asymmetric sink branches, as a
    /// netlist (for the full evaluator) and as slots (for the incremental
    /// one).
    fn two_sink_network() -> (Netlist, Vec<StageSlot>) {
        let tech = Technology::ispd09();
        let buf = tech.composite(tech.small_inverter(), 8);
        let d = DriverSpec::from_composite(&buf);

        let mut t0 = RcTree::new();
        let r0 = t0.add_root(1.0);
        let trunk = t0.add_node(r0, 120.0, 60.0 + d.input_cap);
        let mut t1 = RcTree::new();
        let r1 = t1.add_root(d.output_cap);
        let a = t1.add_node(r1, 60.0, 35.0);
        let b = t1.add_node(r1, 260.0, 75.0);

        let stage0 = Stage {
            driver: StageDriver::Source(SourceSpec::ispd09()),
            tree: t0.clone(),
            taps: vec![Tap {
                node: trunk,
                kind: TapKind::Stage(1),
            }],
        };
        let stage1 = Stage {
            driver: StageDriver::Buffer(d),
            tree: t1.clone(),
            taps: vec![
                Tap {
                    node: a,
                    kind: TapKind::Sink(0),
                },
                Tap {
                    node: b,
                    kind: TapKind::Sink(1),
                },
            ],
        };
        let netlist = Netlist::new(vec![stage0, stage1], 0).expect("valid netlist");

        let mut s0 = SigBuilder::new();
        s0.write_tag(0);
        let mut s1 = SigBuilder::new();
        s1.write_tag(1);
        let slots = vec![
            StageSlot {
                sig: s0.finish(),
                children: vec![1],
                fresh: Some(LoweredStage {
                    driver: StageDriver::Source(SourceSpec::ispd09()),
                    tree: t0,
                    taps: vec![LocalTap {
                        node: trunk,
                        kind: LocalTapKind::Child(0),
                    }],
                }),
            },
            StageSlot {
                sig: s1.finish(),
                children: vec![],
                fresh: Some(LoweredStage {
                    driver: StageDriver::Buffer(d),
                    tree: t1,
                    taps: vec![
                        LocalTap {
                            node: a,
                            kind: LocalTapKind::Sink(0),
                        },
                        LocalTap {
                            node: b,
                            kind: LocalTapKind::Sink(1),
                        },
                    ],
                }),
            },
        ];
        (netlist, slots)
    }

    #[test]
    fn incremental_report_is_bit_identical_to_full() {
        let (netlist, slots) = two_sink_network();
        let tech = Technology::ispd09();
        let full = Evaluator::new(tech.clone()).evaluate(&netlist);
        let inc = IncrementalEvaluator::new(tech);
        let report = inc.evaluate_slots(slots.clone());
        assert_eq!(report, full);
        // Second evaluation: everything hits the caches, result unchanged.
        let report2 = inc.evaluate_slots(
            slots
                .iter()
                .map(|s| StageSlot {
                    sig: s.sig,
                    children: s.children.clone(),
                    fresh: None,
                })
                .collect(),
        );
        assert_eq!(report2, full);
        let stats = inc.stats();
        assert_eq!(stats.stage_misses, 2);
        assert_eq!(stats.stage_hits, 2);
        assert!(stats.solve_hits >= stats.solve_misses);
    }

    #[test]
    fn every_evaluation_counts_one_run() {
        let (netlist, slots) = two_sink_network();
        let inc = IncrementalEvaluator::new(Technology::ispd09());
        assert_eq!(inc.runs(), 0);
        let _ = inc.evaluate_slots(slots.clone());
        let _ = inc.evaluate_slots(
            slots
                .iter()
                .map(|s| StageSlot {
                    sig: s.sig,
                    children: s.children.clone(),
                    fresh: None,
                })
                .collect(),
        );
        // The escape hatch shares the same counter.
        let _ = inc.evaluator().evaluate(&netlist);
        assert_eq!(inc.runs(), 3);
        inc.reset_runs();
        assert_eq!(inc.runs(), 0);
    }

    #[test]
    fn stale_entries_are_evicted() {
        let (_netlist, slots) = two_sink_network();
        let inc = IncrementalEvaluator::new(Technology::ispd09());
        let _ = inc.evaluate_slots(slots.clone());
        assert_eq!(inc.cached_stages(), 2);
        // Re-evaluate only the root slot's worth of content under a fresh
        // signature for many generations; the original entries age out.
        for i in 0..(KEEP_GENERATIONS + 2) {
            let mut slot = slots[1].clone();
            let mut sig = SigBuilder::new();
            sig.write_u64(1000 + i);
            slot.sig = sig.finish();
            slot.children = vec![];
            let mut root = slots[0].clone();
            let mut rsig = SigBuilder::new();
            rsig.write_u64(5000 + i);
            root.sig = rsig.finish();
            let _ = inc.evaluate_slots(vec![root, slot]);
        }
        assert!(!inc.is_cached(slots[0].sig));
        assert!(!inc.is_cached(slots[1].sig));
    }

    #[test]
    fn bounded_solve_cache_stays_correct_under_slew_churn() {
        // Keep the downstream stage's content fixed while the upstream
        // stage changes every round, so a new input slew reaches the fixed
        // stage each time. Past MAX_SOLVES_PER_STAGE entries its solve map
        // is cleared; results must stay bit-identical to full evaluation
        // throughout.
        let tech = Technology::ispd09();
        let (netlist, slots) = two_sink_network();
        let inc = IncrementalEvaluator::new(tech.clone());
        let full = Evaluator::new(tech);
        for round in 0..(MAX_SOLVES_PER_STAGE + 8) {
            let extra_res = round as f64;
            let mut n = netlist.clone();
            let mut t0 = RcTree::new();
            let r0 = t0.add_root(1.0);
            let input_cap = n.stages[1].driver.spec().input_cap;
            let trunk = t0.add_node(r0, 120.0 + extra_res, 60.0 + input_cap);
            n.stages[0].tree = t0.clone();
            n.stages[0].taps[0].node = trunk;

            let mut sig = SigBuilder::new();
            sig.write_f64(extra_res);
            let root_slot = StageSlot {
                sig: sig.finish(),
                children: vec![1],
                fresh: Some(LoweredStage {
                    driver: n.stages[0].driver,
                    tree: t0,
                    taps: vec![LocalTap {
                        node: trunk,
                        kind: LocalTapKind::Child(0),
                    }],
                }),
            };
            let fixed_slot = StageSlot {
                sig: slots[1].sig,
                children: vec![],
                fresh: if inc.is_cached(slots[1].sig) {
                    None
                } else {
                    slots[1].fresh.clone()
                },
            };
            let fast = inc.evaluate_slots(vec![root_slot, fixed_slot]);
            assert_eq!(fast, full.evaluate(&n), "round {round}");
        }
    }

    #[test]
    #[should_panic(expected = "root stage must be driven by the clock source")]
    fn buffer_driven_root_is_rejected() {
        let (_netlist, mut slots) = two_sink_network();
        let buffer_driver = slots[1].fresh.as_ref().expect("fresh").driver;
        slots[0].fresh.as_mut().expect("fresh").driver = buffer_driver;
        let inc = IncrementalEvaluator::new(Technology::ispd09());
        let _ = inc.evaluate_slots(slots);
    }

    #[test]
    #[should_panic(expected = "stage slots do not form a tree")]
    fn undriven_stage_is_rejected() {
        let (_netlist, mut slots) = two_sink_network();
        // Sever the root's child link: slot 1 is never driven.
        slots[0].children.clear();
        slots[0].fresh.as_mut().expect("fresh").taps.clear();
        let inc = IncrementalEvaluator::new(Technology::ispd09());
        let _ = inc.evaluate_slots(slots);
    }

    #[test]
    #[should_panic(expected = "driven more than once")]
    fn doubly_driven_stage_is_rejected() {
        // Root drives slot 1 through two taps while no one drives anyone
        // else; a global visit count alone would not notice, the per-slot
        // drive tracking must.
        let (_netlist, mut slots) = two_sink_network();
        let root = slots[0].fresh.as_mut().expect("fresh");
        let tap = root.taps[0];
        root.taps.push(LocalTap {
            node: tap.node,
            kind: LocalTapKind::Child(1),
        });
        slots[0].children = vec![1, 1];
        let inc = IncrementalEvaluator::new(Technology::ispd09());
        let _ = inc.evaluate_slots(slots);
    }

    #[test]
    #[should_panic(expected = "driven more than once")]
    fn doubly_driven_sink_is_rejected() {
        let (_netlist, mut slots) = two_sink_network();
        let taps = &mut slots[1].fresh.as_mut().expect("fresh").taps;
        taps[1].kind = LocalTapKind::Sink(0);
        let inc = IncrementalEvaluator::new(Technology::ispd09());
        let _ = inc.evaluate_slots(slots);
    }

    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("contango-incremental-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_store_reloads_stages_and_solves_bit_identically() {
        let dir = temp_store_dir("warm");
        let tech = Technology::ispd09();
        let (netlist, slots) = two_sink_network();
        let full = Evaluator::new(tech.clone()).evaluate(&netlist);

        // Cold run: populate the store.
        {
            let inc = IncrementalEvaluator::new(tech.clone());
            inc.attach_store(Arc::new(CacheStore::open(&dir).expect("open")));
            assert_eq!(inc.evaluate_slots(slots.clone()), full);
            let stats = inc.stats();
            assert_eq!(stats.stage_disk_hits, 0);
            assert_eq!(stats.solve_disk_hits, 0);
        }

        // Warm run in a "new process": the probe finds both stages on disk,
        // so no slot needs a fresh lowering, every solve comes from disk,
        // and the report is byte-identical.
        let inc = IncrementalEvaluator::new(tech);
        inc.attach_store(Arc::new(CacheStore::open(&dir).expect("reopen")));
        let warm_slots: Vec<StageSlot> = slots
            .iter()
            .map(|s| {
                assert!(inc.is_cached(s.sig), "stage should load from the store");
                StageSlot {
                    sig: s.sig,
                    children: s.children.clone(),
                    fresh: None,
                }
            })
            .collect();
        assert_eq!(inc.evaluate_slots(warm_slots), full);
        let stats = inc.stats();
        assert_eq!(stats.stage_disk_hits, 2);
        assert_eq!(stats.stage_misses, 0);
        assert_eq!(stats.solve_misses, 0);
        assert!(stats.solve_disk_hits > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_profile_is_deterministic_and_snapshot_based() {
        let dir = temp_store_dir("profile");
        let tech = Technology::ispd09();
        let (_netlist, slots) = two_sink_network();

        let run = |store: Arc<CacheStore>| {
            let inc = IncrementalEvaluator::new(tech.clone());
            inc.attach_store(store);
            inc.begin_job_profile();
            let _ = inc.evaluate_slots(
                slots
                    .iter()
                    .map(|s| StageSlot {
                        sig: s.sig,
                        children: s.children.clone(),
                        fresh: if inc.is_cached(s.sig) {
                            None
                        } else {
                            s.fresh.clone()
                        },
                    })
                    .collect(),
            );
            inc.take_job_profile()
        };

        // Cold: an empty snapshot makes every lookup a miss.
        let cold = run(Arc::new(CacheStore::open(&dir).expect("open")));
        assert_eq!(cold.disk_hits, 0);
        assert!(cold.misses > 0);

        // Warm: the same job against the populated snapshot classifies the
        // same lookups as disk hits — and is reproducible run over run.
        let warm = run(Arc::new(CacheStore::open(&dir).expect("reopen")));
        let warm2 = run(Arc::new(CacheStore::open(&dir).expect("reopen")));
        assert_eq!(warm, warm2);
        assert_eq!(warm.lookups(), cold.lookups());
        assert_eq!(warm.misses, 0);
        assert_eq!(warm.disk_hits, cold.misses);

        // Without begin_job_profile, take returns zeros.
        let inc = IncrementalEvaluator::new(tech.clone());
        assert_eq!(inc.take_job_profile(), CacheCounters::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_stage_payloads_degrade_to_cold_misses() {
        let dir = temp_store_dir("corrupt");
        let store = CacheStore::open(&dir).expect("open");
        let (_netlist, slots) = two_sink_network();
        // A syntactically valid record whose payload is not a stage.
        store
            .put(stage_store_key(slots[0].sig), b"not a stage")
            .expect("put");
        drop(store);
        let inc = IncrementalEvaluator::new(Technology::ispd09());
        inc.attach_store(Arc::new(CacheStore::open(&dir).expect("reopen")));
        assert!(!inc.is_cached(slots[0].sig), "garbage must read as a miss");
        assert_eq!(inc.stats().stage_disk_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stage_and_solve_codecs_round_trip() {
        let (_netlist, slots) = two_sink_network();
        for slot in &slots {
            let stage = slot.fresh.as_ref().expect("fresh");
            let decoded = decode_stage(&encode_stage(stage)).expect("round trip");
            assert_eq!(decoded.driver, stage.driver);
            assert_eq!(decoded.tree, stage.tree);
            assert_eq!(decoded.taps, stage.taps);
        }
        let rel = vec![
            RelTiming {
                delay: 12.5,
                slew: 30.25,
            },
            RelTiming {
                delay: -0.0,
                slew: f64::MIN_POSITIVE,
            },
        ];
        assert_eq!(decode_solves(&encode_solves(&rel), 2), Some(rel.clone()));
        // Tap-count mismatches and truncations are rejected, not trusted.
        assert_eq!(decode_solves(&encode_solves(&rel), 3), None);
        let bytes = encode_solves(&rel);
        assert_eq!(decode_solves(&bytes[..bytes.len() - 1], 2), None);
    }

    #[test]
    fn sig_builder_is_order_sensitive() {
        let mut a = SigBuilder::new();
        a.write_f64(1.0);
        a.write_f64(2.0);
        let mut b = SigBuilder::new();
        b.write_f64(2.0);
        b.write_f64(1.0);
        assert_ne!(a.finish(), b.finish());
        let mut c = SigBuilder::new();
        c.write_f64(1.0);
        c.write_f64(2.0);
        assert_eq!(a.finish(), c.finish());
    }
}
