//! Incremental stage-level evaluation with content-addressed caching.
//!
//! Every round of Contango's optimization passes mutates a handful of tree
//! edges and re-evaluates. A full evaluation re-lowers every stage and
//! re-simulates each of them at both supply corners, even though all but the
//! mutated stages (and their downstream cone, whose input slews shift) are
//! unchanged. The [`IncrementalEvaluator`] makes each evaluation proportional
//! to the size of the change instead:
//!
//! * every stage is identified by a 128-bit **content signature**
//!   ([`StageSig`]) over everything that affects its lowered electrical form
//!   — driver electricals, wire lengths/widths, snaking, sink and
//!   downstream-input capacitance, and the in-stage tree shape;
//! * lowered stages ([`LoweredStage`]) are cached by signature, so only
//!   stages whose nodes changed are re-lowered by the caller;
//! * per-stage transition solves are cached by `(supply, direction, input
//!   slew)`. A stage is re-solved only when it is new **or** an upstream
//!   change altered the slew arriving at its driver — exactly the downstream
//!   cone of the mutation. Arrival-time shifts alone are propagated by
//!   addition, without re-solving.
//!
//! With evaluation incremental, tree *construction* dominates what is left
//! of flow runtime; the complementary construction engine lives in
//! `contango_core::construct` (see `docs/architecture.md` at the
//! repository root).
//!
//! Because cached solves are produced by the same
//! `Evaluator::stage_rel_outputs` primitive the full evaluation uses, an
//! incremental report is bit-identical to a full re-evaluation of the same
//! tree — a property the workspace enforces with equivalence tests rather
//! than trusting the cache keys.
//!
//! "SPICE run" counting is preserved: one [`IncrementalEvaluator::
//! evaluate_slots`] call increments the shared run counter by one, cache
//! hits notwithstanding, so Table-V-style reporting is unchanged.

use crate::evaluator::{EdgeState, EvalOptions, Evaluator, NodeState, RelTiming};
use crate::netlist::StageDriver;
use crate::report::{CornerReport, EvalReport, SinkTiming, TransitionTiming};
use crate::RcTree;
use contango_tech::Technology;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// Cached entries untouched for this many evaluations are evicted; rollbacks
/// in the optimization passes reach at most a few evaluations back, so this
/// keeps rejected-round stages warm while bounding memory.
const KEEP_GENERATIONS: u64 = 32;

/// Upper bound on cached transition solves per stage. A stage in steady
/// state sees four keys (two corners × two directions); stages downstream
/// of a repeatedly mutated region accumulate a new input slew per
/// evaluation, and without a bound their solve maps would grow for the
/// flow's lifetime. Clearing a full map costs one redundant solve round for
/// that stage — negligible at this size.
const MAX_SOLVES_PER_STAGE: usize = 64;

/// 128-bit content signature of one lowered stage.
///
/// Two stages with the same signature lower to the same electrical stage and
/// therefore share cache entries (symmetric clock trees routinely contain
/// electrically identical stages, which the cache deduplicates for free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageSig {
    lo: u64,
    hi: u64,
}

/// Streaming hasher producing a [`StageSig`] from the content walk of a
/// stage. Two independent 64-bit streams (FNV-1a and a splitmix-style
/// multiplier) make accidental collisions across a flow's lifetime
/// negligible.
#[derive(Debug, Clone)]
pub struct SigBuilder {
    lo: u64,
    hi: u64,
}

impl SigBuilder {
    /// Starts a new signature.
    pub fn new() -> Self {
        Self {
            lo: 0xcbf2_9ce4_8422_2325,
            hi: 0x6c62_272e_07bb_0142,
        }
    }

    /// Mixes one 64-bit word into both streams.
    pub fn write_u64(&mut self, v: u64) {
        self.lo = (self.lo ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        self.lo ^= self.lo >> 32;
        self.hi = (self.hi ^ v.rotate_left(32)).wrapping_mul(0x2545_f491_4f6c_dd1d);
        self.hi ^= self.hi >> 29;
    }

    /// Mixes a float by bit pattern (`-0.0` and `0.0` hash differently,
    /// which errs on the side of re-lowering).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Mixes a small tag discriminating record kinds within the walk.
    pub fn write_tag(&mut self, tag: u8) {
        self.write_u64(u64::from(tag));
    }

    /// Mixes an index-sized integer.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Mixes a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(u64::from(v));
    }

    /// Finalizes the signature.
    pub fn finish(&self) -> StageSig {
        StageSig {
            lo: self.lo,
            hi: self.hi,
        }
    }
}

impl Default for SigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// What a tap of an isolated stage feeds, in stage-local terms: global stage
/// indices shift when the tree's structure changes, so cached stages refer
/// to their downstream stages by tap ordinal instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalTapKind {
    /// A clock sink with the given sink id.
    Sink(usize),
    /// The `k`-th downstream stage fed by this stage (in lowering order);
    /// resolved to a global stage index through [`StageSlot::children`].
    Child(usize),
}

/// A tap of an isolated stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalTap {
    /// Node index within the stage's [`RcTree`].
    pub node: usize,
    /// What the tap feeds.
    pub kind: LocalTapKind,
}

/// One stage lowered in isolation: the cacheable unit of incremental
/// evaluation.
#[derive(Debug, Clone)]
pub struct LoweredStage {
    /// The stage's driver.
    pub driver: StageDriver,
    /// The RC tree driven by the driver (node 0 is the driver output).
    pub tree: RcTree,
    /// The taps of this stage, in lowering order.
    pub taps: Vec<LocalTap>,
}

/// One stage of an incremental evaluation request. Slot 0 is the root
/// (source-driven) stage; `children[k]` is the slot index of the stage a
/// `LocalTapKind::Child(k)` tap feeds.
#[derive(Debug, Clone)]
pub struct StageSlot {
    /// Content signature of the stage.
    pub sig: StageSig,
    /// Slot indices of the downstream stages, by tap ordinal.
    pub children: Vec<usize>,
    /// The freshly lowered stage; `None` when
    /// [`IncrementalEvaluator::is_cached`] reported the signature as already
    /// cached, in which case the cached lowering is reused.
    pub fresh: Option<LoweredStage>,
}

/// Key of one cached per-stage transition solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SolveKey {
    vdd: u64,
    rising: bool,
    input_slew: u64,
}

/// A cached stage: its lowering plus every transition solve seen so far.
#[derive(Debug, Clone)]
struct CachedStage {
    stage: LoweredStage,
    total_cap: f64,
    solves: HashMap<SolveKey, Vec<RelTiming>>,
    last_used: u64,
}

/// Cache statistics of an [`IncrementalEvaluator`], for tests, logging and
/// benchmark reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Stage lookups answered from the cache (no re-lowering needed).
    pub stage_hits: u64,
    /// Stage lookups that required a fresh lowering.
    pub stage_misses: u64,
    /// Transition solves answered from the cache.
    pub solve_hits: u64,
    /// Transition solves that ran the stage solver.
    pub solve_misses: u64,
}

/// A persistent, cache-backed clock-network evaluator.
///
/// Wraps a full [`Evaluator`] (sharing its "SPICE run" counter, so run
/// accounting is identical whichever path produced a report) and adds the
/// per-stage caches described in the module docs. Callers lower stages
/// through `contango_core::lower`, which asks [`Self::is_cached`] before
/// lowering so unchanged stages are never re-lowered.
#[derive(Debug)]
pub struct IncrementalEvaluator {
    inner: Evaluator,
    cache: RefCell<HashMap<StageSig, CachedStage>>,
    generation: Cell<u64>,
    stats: Cell<CacheStats>,
}

impl IncrementalEvaluator {
    /// Creates an incremental evaluator with the default (transient) model.
    pub fn new(tech: Technology) -> Self {
        Self::from_evaluator(Evaluator::new(tech))
    }

    /// Creates an incremental evaluator with explicit options.
    pub fn with_options(tech: Technology, options: EvalOptions) -> Self {
        Self::from_evaluator(Evaluator::with_options(tech, options))
    }

    /// Creates an incremental evaluator using a specific delay model.
    pub fn with_model(tech: Technology, model: crate::DelayModel) -> Self {
        Self::from_evaluator(Evaluator::with_model(tech, model))
    }

    /// Wraps an existing full evaluator (its run counter is shared).
    pub fn from_evaluator(inner: Evaluator) -> Self {
        Self {
            inner,
            cache: RefCell::new(HashMap::new()),
            generation: Cell::new(0),
            stats: Cell::new(CacheStats::default()),
        }
    }

    /// The wrapped full evaluator — the escape hatch for callers that need a
    /// plain netlist evaluation (construction-time code, verification).
    /// Runs through it count against the same "SPICE run" counter.
    pub fn evaluator(&self) -> &Evaluator {
        &self.inner
    }

    /// The technology in use.
    pub fn technology(&self) -> &Technology {
        self.inner.technology()
    }

    /// The delay model in use.
    pub fn model(&self) -> crate::DelayModel {
        self.inner.model()
    }

    /// Number of evaluations performed so far (the "SPICE run" count),
    /// incremental and full alike.
    pub fn runs(&self) -> usize {
        self.inner.runs()
    }

    /// Resets the run counter.
    pub fn reset_runs(&self) {
        self.inner.reset_runs();
    }

    /// Returns `true` when a stage with this signature is already cached (in
    /// which case [`StageSlot::fresh`] may be `None`).
    pub fn is_cached(&self, sig: StageSig) -> bool {
        self.cache.borrow().contains_key(&sig)
    }

    /// Number of distinct stages currently cached.
    pub fn cached_stages(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Cache statistics accumulated since construction (or the last
    /// [`Self::reset_stats`]).
    pub fn stats(&self) -> CacheStats {
        self.stats.get()
    }

    /// Resets the cache statistics.
    pub fn reset_stats(&self) {
        self.stats.set(CacheStats::default());
    }

    /// Drops every cached stage and solve.
    pub fn clear_cache(&self) {
        self.cache.borrow_mut().clear();
    }

    /// Evaluates a clock network presented as stage slots (slot 0 = the
    /// source-driven root stage) at both supply corners.
    ///
    /// Counts as exactly one "SPICE run" regardless of how much of the work
    /// was answered from the caches.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty, or a slot has `fresh == None` for a
    /// signature the cache does not hold (a caller contract violation), or a
    /// child index is out of range.
    pub fn evaluate_slots(&self, slots: Vec<StageSlot>) -> EvalReport {
        assert!(!slots.is_empty(), "cannot evaluate an empty stage list");
        self.inner.count_run();
        let gen = self.generation.get() + 1;
        self.generation.set(gen);
        let mut stats = self.stats.get();

        let mut cache = self.cache.borrow_mut();
        let mut meta: Vec<(StageSig, Vec<usize>)> = Vec::with_capacity(slots.len());
        // Per-slot stage capacitance, captured while the cache entry is in
        // hand. Summed in slot order — the same order `Netlist::total_cap`
        // sums per-stage subtotals — so the total is bit-identical to the
        // full path.
        let mut total_cap = 0.0_f64;
        for slot in slots {
            match cache.entry(slot.sig) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let entry = e.get_mut();
                    entry.last_used = gen;
                    total_cap += entry.total_cap;
                    stats.stage_hits += 1;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    let stage = slot
                        .fresh
                        .expect("stages missing from the cache must be lowered by the caller");
                    let stage_cap = stage.tree.total_cap();
                    total_cap += stage_cap;
                    v.insert(CachedStage {
                        stage,
                        total_cap: stage_cap,
                        solves: HashMap::new(),
                        last_used: gen,
                    });
                    stats.stage_misses += 1;
                }
            }
            meta.push((slot.sig, slot.children));
        }

        let tech = self.inner.technology();
        let (nominal_vdd, low_vdd) = (tech.nominal_corner.vdd, tech.low_corner.vdd);
        let slew_limit = tech.slew_limit;
        let nominal = self.evaluate_corner(&mut cache, &mut stats, &meta, nominal_vdd);
        let low = self.evaluate_corner(&mut cache, &mut stats, &meta, low_vdd);
        let buffer_count = meta.len().saturating_sub(1);

        cache.retain(|_, e| e.last_used + KEEP_GENERATIONS >= gen);
        self.stats.set(stats);

        EvalReport {
            nominal,
            low,
            total_cap,
            slew_limit,
            buffer_count,
        }
    }

    /// Evaluates one supply corner over the cached stages, mirroring
    /// `Evaluator::evaluate_corner` step for step.
    fn evaluate_corner(
        &self,
        cache: &mut HashMap<StageSig, CachedStage>,
        stats: &mut CacheStats,
        meta: &[(StageSig, Vec<usize>)],
        vdd: f64,
    ) -> CornerReport {
        let n = meta.len();
        let source_slew = match cache[&meta[0].0].stage.driver {
            StageDriver::Source(s) => s.slew,
            // `Netlist::validate` rejects buffer-driven roots on the full
            // path; fail just as loudly here.
            StageDriver::Buffer(_) => panic!("root stage must be driven by the clock source"),
        };
        let mut inputs: Vec<Option<NodeState>> = vec![None; n];
        inputs[0] = Some(NodeState {
            rise: EdgeState {
                arrival: 0.0,
                slew: source_slew,
            },
            fall: EdgeState {
                arrival: 0.0,
                slew: source_slew,
            },
        });

        let mut sinks: Vec<SinkTiming> = Vec::new();
        let mut max_slew = 0.0_f64;
        // Per-slot drive tracking, mirroring `Netlist::validate`'s `driven`
        // array: a doubly-driven slot fails at the offending tap, and the
        // final count catches undriven slots.
        let mut driven = vec![false; n];
        driven[0] = true;
        let mut visited = 0usize;
        let mut stack = vec![0usize];
        while let Some(si) = stack.pop() {
            visited += 1;
            let input = inputs[si].expect("stage order guarantees inputs are known");
            let entry = cache
                .get_mut(&meta[si].0)
                .expect("every slot was installed above");
            let inverting = entry.stage.driver.inverting();
            let (in_for_rise, in_for_fall) = if inverting {
                (input.fall, input.rise)
            } else {
                (input.rise, input.fall)
            };

            let rise_out =
                Self::transition_outputs(&self.inner, stats, entry, vdd, true, in_for_rise);
            let fall_out =
                Self::transition_outputs(&self.inner, stats, entry, vdd, false, in_for_fall);

            // Children are pushed in tap order and popped LIFO — the same
            // traversal `Netlist::topological_order` produces.
            let mut pushed: Vec<usize> = Vec::new();
            for (tap_idx, tap) in entry.stage.taps.iter().enumerate() {
                let r = rise_out[tap_idx];
                let f = fall_out[tap_idx];
                max_slew = max_slew.max(r.slew).max(f.slew);
                match tap.kind {
                    LocalTapKind::Sink(id) => {
                        sinks.push(SinkTiming {
                            sink_id: id,
                            rise: TransitionTiming {
                                latency: r.arrival,
                                slew: r.slew,
                            },
                            fall: TransitionTiming {
                                latency: f.arrival,
                                slew: f.slew,
                            },
                        });
                    }
                    LocalTapKind::Child(k) => {
                        let child = meta[si].1[k];
                        assert!(
                            !driven[child],
                            "stage slot {child} is driven more than once"
                        );
                        driven[child] = true;
                        pushed.push(child);
                        inputs[child] = Some(NodeState { rise: r, fall: f });
                    }
                }
            }
            stack.extend(pushed);
        }

        // The structural checks `Netlist::new` performs on the full path,
        // preserved here so malformed slot graphs fail loudly instead of
        // producing silently wrong reports: every stage driven exactly once
        // (checked per tap above) and no sink or stage left undriven.
        assert_eq!(
            visited, n,
            "stage slots do not form a tree: only {visited} of {n} stages are driven"
        );
        sinks.sort_by_key(|s| s.sink_id);
        for pair in sinks.windows(2) {
            assert_ne!(
                pair[0].sink_id, pair[1].sink_id,
                "sink {} is driven more than once",
                pair[0].sink_id
            );
        }
        CornerReport {
            vdd,
            sinks,
            max_slew,
        }
    }

    /// Returns the absolute output edge state at every tap of a cached
    /// stage, solving the stage only when this `(supply, direction, input
    /// slew)` combination has not been seen before.
    fn transition_outputs(
        evaluator: &Evaluator,
        stats: &mut CacheStats,
        entry: &mut CachedStage,
        vdd: f64,
        output_rising: bool,
        input: EdgeState,
    ) -> Vec<EdgeState> {
        let key = SolveKey {
            vdd: vdd.to_bits(),
            rising: output_rising,
            input_slew: input.slew.to_bits(),
        };
        // Bound the per-stage solve map before taking an entry; the extra
        // lookup only runs in the rare at-capacity case.
        if entry.solves.len() >= MAX_SOLVES_PER_STAGE && !entry.solves.contains_key(&key) {
            entry.solves.clear();
        }
        // Split borrows: the solve entry holds `solves` mutably while the
        // solver reads the stage.
        let CachedStage { stage, solves, .. } = entry;
        let rel = match solves.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                stats.solve_hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                stats.solve_misses += 1;
                let driver = stage.driver.spec();
                v.insert(evaluator.stage_rel_outputs(
                    &stage.tree,
                    stage.taps.iter().map(|t| t.node),
                    &driver,
                    stage.driver.is_source(),
                    vdd,
                    output_rising,
                    input.slew,
                ))
            }
        };
        rel.iter()
            .map(|t| EdgeState {
                arrival: input.arrival + t.delay,
                slew: t.slew,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverSpec, SourceSpec};
    use crate::netlist::{Netlist, Stage, Tap, TapKind};

    /// Source → trunk wire → inverter → two asymmetric sink branches, as a
    /// netlist (for the full evaluator) and as slots (for the incremental
    /// one).
    fn two_sink_network() -> (Netlist, Vec<StageSlot>) {
        let tech = Technology::ispd09();
        let buf = tech.composite(tech.small_inverter(), 8);
        let d = DriverSpec::from_composite(&buf);

        let mut t0 = RcTree::new();
        let r0 = t0.add_root(1.0);
        let trunk = t0.add_node(r0, 120.0, 60.0 + d.input_cap);
        let mut t1 = RcTree::new();
        let r1 = t1.add_root(d.output_cap);
        let a = t1.add_node(r1, 60.0, 35.0);
        let b = t1.add_node(r1, 260.0, 75.0);

        let stage0 = Stage {
            driver: StageDriver::Source(SourceSpec::ispd09()),
            tree: t0.clone(),
            taps: vec![Tap {
                node: trunk,
                kind: TapKind::Stage(1),
            }],
        };
        let stage1 = Stage {
            driver: StageDriver::Buffer(d),
            tree: t1.clone(),
            taps: vec![
                Tap {
                    node: a,
                    kind: TapKind::Sink(0),
                },
                Tap {
                    node: b,
                    kind: TapKind::Sink(1),
                },
            ],
        };
        let netlist = Netlist::new(vec![stage0, stage1], 0).expect("valid netlist");

        let mut s0 = SigBuilder::new();
        s0.write_tag(0);
        let mut s1 = SigBuilder::new();
        s1.write_tag(1);
        let slots = vec![
            StageSlot {
                sig: s0.finish(),
                children: vec![1],
                fresh: Some(LoweredStage {
                    driver: StageDriver::Source(SourceSpec::ispd09()),
                    tree: t0,
                    taps: vec![LocalTap {
                        node: trunk,
                        kind: LocalTapKind::Child(0),
                    }],
                }),
            },
            StageSlot {
                sig: s1.finish(),
                children: vec![],
                fresh: Some(LoweredStage {
                    driver: StageDriver::Buffer(d),
                    tree: t1,
                    taps: vec![
                        LocalTap {
                            node: a,
                            kind: LocalTapKind::Sink(0),
                        },
                        LocalTap {
                            node: b,
                            kind: LocalTapKind::Sink(1),
                        },
                    ],
                }),
            },
        ];
        (netlist, slots)
    }

    #[test]
    fn incremental_report_is_bit_identical_to_full() {
        let (netlist, slots) = two_sink_network();
        let tech = Technology::ispd09();
        let full = Evaluator::new(tech.clone()).evaluate(&netlist);
        let inc = IncrementalEvaluator::new(tech);
        let report = inc.evaluate_slots(slots.clone());
        assert_eq!(report, full);
        // Second evaluation: everything hits the caches, result unchanged.
        let report2 = inc.evaluate_slots(
            slots
                .iter()
                .map(|s| StageSlot {
                    sig: s.sig,
                    children: s.children.clone(),
                    fresh: None,
                })
                .collect(),
        );
        assert_eq!(report2, full);
        let stats = inc.stats();
        assert_eq!(stats.stage_misses, 2);
        assert_eq!(stats.stage_hits, 2);
        assert!(stats.solve_hits >= stats.solve_misses);
    }

    #[test]
    fn every_evaluation_counts_one_run() {
        let (netlist, slots) = two_sink_network();
        let inc = IncrementalEvaluator::new(Technology::ispd09());
        assert_eq!(inc.runs(), 0);
        let _ = inc.evaluate_slots(slots.clone());
        let _ = inc.evaluate_slots(
            slots
                .iter()
                .map(|s| StageSlot {
                    sig: s.sig,
                    children: s.children.clone(),
                    fresh: None,
                })
                .collect(),
        );
        // The escape hatch shares the same counter.
        let _ = inc.evaluator().evaluate(&netlist);
        assert_eq!(inc.runs(), 3);
        inc.reset_runs();
        assert_eq!(inc.runs(), 0);
    }

    #[test]
    fn stale_entries_are_evicted() {
        let (_netlist, slots) = two_sink_network();
        let inc = IncrementalEvaluator::new(Technology::ispd09());
        let _ = inc.evaluate_slots(slots.clone());
        assert_eq!(inc.cached_stages(), 2);
        // Re-evaluate only the root slot's worth of content under a fresh
        // signature for many generations; the original entries age out.
        for i in 0..(KEEP_GENERATIONS + 2) {
            let mut slot = slots[1].clone();
            let mut sig = SigBuilder::new();
            sig.write_u64(1000 + i);
            slot.sig = sig.finish();
            slot.children = vec![];
            let mut root = slots[0].clone();
            let mut rsig = SigBuilder::new();
            rsig.write_u64(5000 + i);
            root.sig = rsig.finish();
            let _ = inc.evaluate_slots(vec![root, slot]);
        }
        assert!(!inc.is_cached(slots[0].sig));
        assert!(!inc.is_cached(slots[1].sig));
    }

    #[test]
    fn bounded_solve_cache_stays_correct_under_slew_churn() {
        // Keep the downstream stage's content fixed while the upstream
        // stage changes every round, so a new input slew reaches the fixed
        // stage each time. Past MAX_SOLVES_PER_STAGE entries its solve map
        // is cleared; results must stay bit-identical to full evaluation
        // throughout.
        let tech = Technology::ispd09();
        let (netlist, slots) = two_sink_network();
        let inc = IncrementalEvaluator::new(tech.clone());
        let full = Evaluator::new(tech);
        for round in 0..(MAX_SOLVES_PER_STAGE + 8) {
            let extra_res = round as f64;
            let mut n = netlist.clone();
            let mut t0 = RcTree::new();
            let r0 = t0.add_root(1.0);
            let input_cap = n.stages[1].driver.spec().input_cap;
            let trunk = t0.add_node(r0, 120.0 + extra_res, 60.0 + input_cap);
            n.stages[0].tree = t0.clone();
            n.stages[0].taps[0].node = trunk;

            let mut sig = SigBuilder::new();
            sig.write_f64(extra_res);
            let root_slot = StageSlot {
                sig: sig.finish(),
                children: vec![1],
                fresh: Some(LoweredStage {
                    driver: n.stages[0].driver,
                    tree: t0,
                    taps: vec![LocalTap {
                        node: trunk,
                        kind: LocalTapKind::Child(0),
                    }],
                }),
            };
            let fixed_slot = StageSlot {
                sig: slots[1].sig,
                children: vec![],
                fresh: if inc.is_cached(slots[1].sig) {
                    None
                } else {
                    slots[1].fresh.clone()
                },
            };
            let fast = inc.evaluate_slots(vec![root_slot, fixed_slot]);
            assert_eq!(fast, full.evaluate(&n), "round {round}");
        }
    }

    #[test]
    #[should_panic(expected = "root stage must be driven by the clock source")]
    fn buffer_driven_root_is_rejected() {
        let (_netlist, mut slots) = two_sink_network();
        let buffer_driver = slots[1].fresh.as_ref().expect("fresh").driver;
        slots[0].fresh.as_mut().expect("fresh").driver = buffer_driver;
        let inc = IncrementalEvaluator::new(Technology::ispd09());
        let _ = inc.evaluate_slots(slots);
    }

    #[test]
    #[should_panic(expected = "stage slots do not form a tree")]
    fn undriven_stage_is_rejected() {
        let (_netlist, mut slots) = two_sink_network();
        // Sever the root's child link: slot 1 is never driven.
        slots[0].children.clear();
        slots[0].fresh.as_mut().expect("fresh").taps.clear();
        let inc = IncrementalEvaluator::new(Technology::ispd09());
        let _ = inc.evaluate_slots(slots);
    }

    #[test]
    #[should_panic(expected = "driven more than once")]
    fn doubly_driven_stage_is_rejected() {
        // Root drives slot 1 through two taps while no one drives anyone
        // else; a global visit count alone would not notice, the per-slot
        // drive tracking must.
        let (_netlist, mut slots) = two_sink_network();
        let root = slots[0].fresh.as_mut().expect("fresh");
        let tap = root.taps[0];
        root.taps.push(LocalTap {
            node: tap.node,
            kind: LocalTapKind::Child(1),
        });
        slots[0].children = vec![1, 1];
        let inc = IncrementalEvaluator::new(Technology::ispd09());
        let _ = inc.evaluate_slots(slots);
    }

    #[test]
    #[should_panic(expected = "driven more than once")]
    fn doubly_driven_sink_is_rejected() {
        let (_netlist, mut slots) = two_sink_network();
        let taps = &mut slots[1].fresh.as_mut().expect("fresh").taps;
        taps[1].kind = LocalTapKind::Sink(0);
        let inc = IncrementalEvaluator::new(Technology::ispd09());
        let _ = inc.evaluate_slots(slots);
    }

    #[test]
    fn sig_builder_is_order_sensitive() {
        let mut a = SigBuilder::new();
        a.write_f64(1.0);
        a.write_f64(2.0);
        let mut b = SigBuilder::new();
        b.write_f64(2.0);
        b.write_f64(1.0);
        assert_ne!(a.finish(), b.finish());
        let mut c = SigBuilder::new();
        c.write_f64(1.0);
        c.write_f64(2.0);
        assert_eq!(a.finish(), c.finish());
    }
}
