//! Stage-level electrical netlist of a buffered clock network.

use crate::driver::{DriverSpec, SourceSpec};
use crate::error::NetlistError;
use crate::RcTree;
use serde::{Deserialize, Serialize};

/// The driver of a stage: either the chip-level clock source (only the root
/// stage) or a composite inverter/buffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StageDriver {
    /// The chip-level clock source.
    Source(SourceSpec),
    /// A buffer or inverter inside the tree.
    Buffer(DriverSpec),
}

impl StageDriver {
    /// The driver electricals seen by the stage's RC tree.
    pub fn spec(&self) -> DriverSpec {
        match self {
            StageDriver::Source(s) => s.as_driver(),
            StageDriver::Buffer(d) => *d,
        }
    }

    /// Returns `true` for inverting drivers.
    pub fn inverting(&self) -> bool {
        matches!(self, StageDriver::Buffer(d) if d.inverting)
    }

    /// Returns `true` for the clock source.
    pub fn is_source(&self) -> bool {
        matches!(self, StageDriver::Source(_))
    }
}

/// What hangs off a tap node of a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TapKind {
    /// A clock sink (flip-flop clock pin) with the given sink id.
    Sink(usize),
    /// The input of a downstream stage (index into [`Netlist::stages`]).
    Stage(usize),
}

/// A tap: a node of the stage's RC tree that feeds a sink or another stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tap {
    /// Node index within the stage's [`RcTree`].
    pub node: usize,
    /// What the tap feeds.
    pub kind: TapKind,
}

/// One buffered stage: a driver, the RC tree it drives and the taps where
/// sinks or downstream stage inputs connect.
///
/// The capacitive load of everything attached to a tap (sink capacitance or
/// the downstream driver's input capacitance) must already be included in
/// the tree's node capacitance by the netlist builder; the evaluator does
/// not add it again.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// The stage's driver.
    pub driver: StageDriver,
    /// The RC tree driven by the driver (node 0 is the driver output).
    pub tree: RcTree,
    /// The taps of this stage.
    pub taps: Vec<Tap>,
}

/// A full clock-network netlist: a tree of stages rooted at the stage driven
/// by the clock source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    /// All stages; `stages[root]` is driven by the clock source.
    pub stages: Vec<Stage>,
    /// Index of the root stage.
    pub root: usize,
}

impl Netlist {
    /// Creates a netlist and validates its structure.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found: an
    /// out-of-range root or tap reference, a non-root stage that is never
    /// driven or driven more than once, a non-source root driver, or a
    /// duplicated sink id.
    pub fn new(stages: Vec<Stage>, root: usize) -> Result<Self, NetlistError> {
        let netlist = Self { stages, root };
        netlist.validate()?;
        Ok(netlist)
    }

    fn validate(&self) -> Result<(), NetlistError> {
        if self.root >= self.stages.len() {
            return Err(NetlistError::RootOutOfRange { root: self.root });
        }
        if !self.stages[self.root].driver.is_source() {
            return Err(NetlistError::RootNotSource);
        }
        let mut driven = vec![0usize; self.stages.len()];
        let mut sink_seen = std::collections::BTreeSet::new();
        for (si, stage) in self.stages.iter().enumerate() {
            if stage.tree.is_empty() {
                return Err(NetlistError::EmptyStage { stage: si });
            }
            for tap in &stage.taps {
                if tap.node >= stage.tree.len() {
                    return Err(NetlistError::TapOutOfRange {
                        stage: si,
                        node: tap.node,
                    });
                }
                match tap.kind {
                    TapKind::Stage(child) => {
                        if child >= self.stages.len() {
                            return Err(NetlistError::MissingStage { stage: si, child });
                        }
                        if child == self.root {
                            return Err(NetlistError::RootDriven);
                        }
                        driven[child] += 1;
                    }
                    TapKind::Sink(id) => {
                        if !sink_seen.insert(id) {
                            return Err(NetlistError::DuplicateSink { sink: id });
                        }
                    }
                }
            }
        }
        for (si, &count) in driven.iter().enumerate() {
            if si == self.root {
                continue;
            }
            if count == 0 {
                return Err(NetlistError::NeverDriven { stage: si });
            }
            if count > 1 {
                return Err(NetlistError::MultiplyDriven { stage: si, count });
            }
        }
        Ok(())
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` when the netlist has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Sink ids present in the netlist, sorted.
    pub fn sink_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .stages
            .iter()
            .flat_map(|s| s.taps.iter())
            .filter_map(|t| match t.kind {
                TapKind::Sink(id) => Some(id),
                TapKind::Stage(_) => None,
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Number of sinks in the netlist.
    pub fn sink_count(&self) -> usize {
        self.sink_ids().len()
    }

    /// Number of buffer stages (stages not driven by the source).
    pub fn buffer_count(&self) -> usize {
        self.stages.len().saturating_sub(1)
    }

    /// Total grounded capacitance of the netlist in fF (wire, sink and
    /// downstream-input capacitance as embedded in the stage trees, plus
    /// every buffer driver's output parasitic capacitance is expected to be
    /// part of its own stage tree).
    pub fn total_cap(&self) -> f64 {
        self.stages.iter().map(|s| s.tree.total_cap()).sum()
    }

    /// Stage indices in topological order (parents before children).
    pub fn topological_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.stages.len());
        let mut stack = vec![self.root];
        while let Some(si) = stack.pop() {
            order.push(si);
            for tap in &self.stages[si].taps {
                if let TapKind::Stage(child) = tap.kind {
                    stack.push(child);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::SourceSpec;

    fn tiny_netlist() -> Netlist {
        // Source stage drives one buffer stage with two sinks.
        let mut t0 = RcTree::new();
        let r0 = t0.add_root(2.0);
        let tap0 = t0.add_node(r0, 100.0, 30.0);
        let stage0 = Stage {
            driver: StageDriver::Source(SourceSpec::ispd09()),
            tree: t0,
            taps: vec![Tap {
                node: tap0,
                kind: TapKind::Stage(1),
            }],
        };
        let mut t1 = RcTree::new();
        let r1 = t1.add_root(10.0);
        let a = t1.add_node(r1, 80.0, 25.0);
        let b = t1.add_node(r1, 80.0, 25.0);
        let stage1 = Stage {
            driver: StageDriver::Buffer(DriverSpec {
                output_res: 55.0,
                output_cap: 48.8,
                input_cap: 33.6,
                intrinsic_delay: 6.0,
                inverting: true,
            }),
            tree: t1,
            taps: vec![
                Tap {
                    node: a,
                    kind: TapKind::Sink(0),
                },
                Tap {
                    node: b,
                    kind: TapKind::Sink(1),
                },
            ],
        };
        Netlist::new(vec![stage0, stage1], 0).expect("valid netlist")
    }

    #[test]
    fn valid_netlist_reports_structure() {
        let n = tiny_netlist();
        assert_eq!(n.len(), 2);
        assert_eq!(n.sink_count(), 2);
        assert_eq!(n.buffer_count(), 1);
        assert_eq!(n.sink_ids(), vec![0, 1]);
        assert_eq!(n.topological_order(), vec![0, 1]);
        assert!(n.total_cap() > 0.0);
    }

    #[test]
    fn duplicate_sink_rejected() {
        let mut n = tiny_netlist();
        n.stages[1].taps[1].kind = TapKind::Sink(0);
        assert!(Netlist::new(n.stages, 0).is_err());
    }

    #[test]
    fn undriven_stage_rejected() {
        let mut n = tiny_netlist();
        n.stages[0].taps.clear();
        let err = Netlist::new(n.stages, 0).unwrap_err();
        assert_eq!(err, NetlistError::NeverDriven { stage: 1 });
        assert!(err.to_string().contains("never driven"), "{err}");
    }

    #[test]
    fn non_source_root_rejected() {
        let n = tiny_netlist();
        let stages = vec![n.stages[1].clone()];
        assert!(Netlist::new(stages, 0).is_err());
    }

    #[test]
    fn out_of_range_tap_rejected() {
        let mut n = tiny_netlist();
        n.stages[1].taps[0].node = 99;
        assert!(Netlist::new(n.stages, 0).is_err());
    }

    #[test]
    fn driver_spec_of_source_is_non_inverting() {
        let n = tiny_netlist();
        assert!(n.stages[0].driver.is_source());
        assert!(!n.stages[0].driver.inverting());
        assert!(n.stages[1].driver.inverting());
    }
}
