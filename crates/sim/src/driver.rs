//! Driver models: clock source and buffer/inverter stages.

use contango_tech::{CompositeBuffer, Technology};
use serde::{Deserialize, Serialize};

/// Ratio between the pull-up and pull-down effective resistance of an
/// inverter.
///
/// Real inverters are never perfectly symmetric; the residual asymmetry is
/// what makes rising and falling sink latencies diverge once skew has been
/// squeezed below a few picoseconds (paper, Section IV-G). The value models
/// a typical P/N imbalance after sizing for near-equal strength.
pub const RISE_FALL_ASYMMETRY: f64 = 1.04;

/// Sensitivity of a gate's delay to the slew of its input transition
/// (ps of additional delay per ps of input 10–90% slew).
pub const SLEW_DELAY_SENSITIVITY: f64 = 0.12;

/// Fraction of the input slew that leaks into the output transition time of
/// a gate (combined quadratically with the output-network slew).
pub const SLEW_PROPAGATION: f64 = 0.25;

/// Electrical description of the driver of one stage.
///
/// A driver is either the chip-level clock source (a voltage source with a
/// fixed output resistance) or a composite inverter; in both cases the stage
/// is modelled as a Thevenin source driving the stage's RC tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriverSpec {
    /// Effective output resistance at the nominal supply, in Ω.
    pub output_res: f64,
    /// Output (parasitic) capacitance added at the driving point, in fF.
    pub output_cap: f64,
    /// Input pin capacitance presented to the upstream stage, in fF.
    pub input_cap: f64,
    /// Intrinsic (unloaded) gate delay at the nominal supply, in ps.
    pub intrinsic_delay: f64,
    /// Whether the driver inverts polarity (an inverter) or not (the source
    /// or a true buffer).
    pub inverting: bool,
}

impl DriverSpec {
    /// Driver description of a composite inverter.
    pub fn from_composite(buffer: &CompositeBuffer) -> Self {
        Self {
            output_res: buffer.output_res(),
            output_cap: buffer.output_cap(),
            input_cap: buffer.input_cap(),
            intrinsic_delay: buffer.intrinsic_delay(),
            inverting: true,
        }
    }

    /// Output resistance for a given transition direction at a given supply.
    ///
    /// Rising outputs are driven by the (slightly weaker) pull-up network,
    /// falling outputs by the pull-down network; both derate with supply
    /// voltage through [`Technology::derate`].
    pub fn corner_res(&self, tech: &Technology, vdd: f64, output_rising: bool) -> f64 {
        let asym = if output_rising {
            RISE_FALL_ASYMMETRY
        } else {
            1.0 / RISE_FALL_ASYMMETRY
        };
        self.output_res * asym * tech.derate(vdd)
    }

    /// Intrinsic delay at a given supply.
    pub fn corner_intrinsic(&self, tech: &Technology, vdd: f64) -> f64 {
        self.intrinsic_delay * tech.derate(vdd)
    }
}

/// The chip-level clock source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceSpec {
    /// Output resistance of the source driver, in Ω.
    pub output_res: f64,
    /// 10%–90% transition time of the source waveform, in ps.
    pub slew: f64,
}

impl SourceSpec {
    /// Creates a source with the given output resistance and input slew.
    pub fn new(output_res: f64, slew: f64) -> Self {
        Self { output_res, slew }
    }

    /// The ISPD'09-style source: a strong external driver with a clean edge.
    pub fn ispd09() -> Self {
        Self {
            output_res: 25.0,
            slew: 20.0,
        }
    }

    /// Driver view of the source (non-inverting, no intrinsic delay).
    pub fn as_driver(&self) -> DriverSpec {
        DriverSpec {
            output_res: self.output_res,
            output_cap: 0.0,
            input_cap: 0.0,
            intrinsic_delay: 0.0,
            inverting: false,
        }
    }
}

impl Default for SourceSpec {
    fn default() -> Self {
        Self::ispd09()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contango_tech::Technology;

    #[test]
    fn composite_driver_inherits_electricals() {
        let tech = Technology::ispd09();
        let c = tech.composite(tech.small_inverter(), 8);
        let d = DriverSpec::from_composite(&c);
        assert!((d.output_res - 55.0).abs() < 1e-9);
        assert!((d.input_cap - 33.6).abs() < 1e-9);
        assert!(d.inverting);
    }

    #[test]
    fn corner_resistance_rises_at_low_vdd() {
        let tech = Technology::ispd09();
        let c = tech.composite(tech.small_inverter(), 8);
        let d = DriverSpec::from_composite(&c);
        let nominal = d.corner_res(&tech, 1.2, true);
        let low = d.corner_res(&tech, 1.0, true);
        assert!(low > nominal);
    }

    #[test]
    fn rise_fall_asymmetry_is_applied() {
        let tech = Technology::ispd09();
        let c = tech.composite(tech.small_inverter(), 1);
        let d = DriverSpec::from_composite(&c);
        let up = d.corner_res(&tech, 1.2, true);
        let down = d.corner_res(&tech, 1.2, false);
        assert!(up > down);
        assert!((up / down - RISE_FALL_ASYMMETRY * RISE_FALL_ASYMMETRY).abs() < 1e-9);
    }

    #[test]
    fn source_driver_is_non_inverting_and_delay_free() {
        let s = SourceSpec::default();
        let d = s.as_driver();
        assert!(!d.inverting);
        assert_eq!(d.intrinsic_delay, 0.0);
        assert_eq!(d.input_cap, 0.0);
    }
}
