//! Persistent content-addressed cache store.
//!
//! The store maps 128-bit content signatures (see
//! [`StageSig`](crate::StageSig)) to opaque payload bytes and persists them
//! in *append-only segment files* under one directory, so evaluation and
//! construction results survive process restarts and are shared across
//! concurrent campaign workers and the serve daemon.
//!
//! # Layout and sharing model
//!
//! A store directory holds any number of `*.seg` files. Each file starts
//! with an 8-byte magic and is followed by self-checking records:
//!
//! ```text
//! ns: u8 | key.lo: u64 | key.hi: u64 | len: u32 | checksum: u64 | payload
//! ```
//!
//! (all integers little-endian; the checksum is FNV-1a over the namespace,
//! key and payload bytes). Every [`CacheStore`] instance appends to its
//! *own* segment file, created with `create_new` under a process-unique
//! name, so concurrent writers — threads, the daemon, other processes —
//! never interleave bytes in one file and need no locks. Readers tolerate a
//! file whose tail is still being written: the first record that fails its
//! checksum (or runs past the end of the file) ends the scan of that file.
//!
//! # Snapshot vs. added entries
//!
//! Entries present on disk when the store is opened form the immutable
//! *snapshot*, read lock-free for the store's lifetime. Entries inserted
//! later live in a mutex-guarded side map (and are appended to the segment
//! file). The split is what keeps per-job cache accounting deterministic:
//! snapshot membership is a pure function of the directory at open time,
//! independent of worker scheduling.
//!
//! # Corruption
//!
//! A truncated, bit-flipped or partially written record is never an error
//! and never a wrong result: the checksum rejects it, the rest of that
//! segment is skipped, and the affected keys simply degrade to cold misses
//! (recomputed and re-appended by whoever needs them). Only real I/O
//! failures — an unreadable directory, a failed append — surface as
//! [`StoreError`].

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Namespace for lowered-stage payloads keyed by stage signature.
pub const NS_STAGE: u8 = 1;
/// Namespace for transition-solve payloads keyed by a mix of the stage
/// signature, the evaluation-context fingerprint and the solve key.
pub const NS_SOLVE: u8 = 2;
/// Namespace for initial-construction payloads keyed by instance content.
pub const NS_CONSTRUCT: u8 = 3;

/// Magic bytes opening every segment file.
const MAGIC: [u8; 8] = *b"CTGCACH1";
/// Fixed per-record header size: ns + key + payload length + checksum.
const RECORD_HEADER: usize = 1 + 8 + 8 + 4 + 8;
/// Upper bound on a single payload; anything larger is treated as
/// corruption on read and silently not persisted on write.
const MAX_PAYLOAD: usize = 64 << 20;

/// A content address: a namespace plus a 128-bit content signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Payload namespace (one of [`NS_STAGE`], [`NS_SOLVE`],
    /// [`NS_CONSTRUCT`], or a user-chosen namespace ≥ 16).
    pub ns: u8,
    /// Low 64 bits of the content signature.
    pub lo: u64,
    /// High 64 bits of the content signature.
    pub hi: u64,
}

impl StoreKey {
    /// Creates a key from a namespace and the two signature halves.
    pub fn new(ns: u8, lo: u64, hi: u64) -> Self {
        Self { ns, lo, hi }
    }
}

/// Deterministic cache-lookup counters.
///
/// These are the fields surfaced in campaign JSONL lines, the suite cache
/// table and daemon response frames; they are wall-clock-free and, when
/// produced by the per-job cache *profile* (see
/// [`IncrementalEvaluator::take_job_profile`](crate::IncrementalEvaluator::take_job_profile)),
/// independent of worker count and scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from in-memory caches.
    pub mem_hits: u64,
    /// Lookups answered from the on-disk snapshot.
    pub disk_hits: u64,
    /// Lookups that found nothing and had to compute.
    pub misses: u64,
    /// Entries evicted from bounded in-memory caches.
    pub evictions: u64,
}

impl CacheCounters {
    /// Adds `other` into `self`, field by field.
    pub fn absorb(&mut self, other: CacheCounters) {
        self.mem_hits += other.mem_hits;
        self.disk_hits += other.disk_hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }

    /// Total number of lookups counted.
    pub fn lookups(&self) -> u64 {
        self.mem_hits + self.disk_hits + self.misses
    }
}

/// A real I/O failure of the store (never mere data corruption).
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system error while reading or writing the store.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error message.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "cache store I/O error at {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Which tier of the store answered a [`CacheStore::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitTier {
    /// The entry was on disk when the store was opened.
    Snapshot,
    /// The entry was inserted after the store was opened (by this
    /// process; other processes' later appends are not visible until the
    /// next open).
    Added,
}

#[derive(Debug, Default)]
struct Inner {
    added: HashMap<StoreKey, Vec<u8>>,
    writer: Option<Writer>,
}

#[derive(Debug)]
struct Writer {
    path: PathBuf,
    file: fs::File,
}

/// Distinguishes segment files created by several stores within one
/// process (threads of a campaign, the daemon's per-request stores, …).
static SEGMENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// A persistent content-addressed cache backed by one directory of
/// append-only segment files. See the [module docs](self) for the layout,
/// sharing and corruption model.
#[derive(Debug)]
pub struct CacheStore {
    dir: PathBuf,
    snapshot: HashMap<StoreKey, Vec<u8>>,
    corrupt_segments: usize,
    inner: Mutex<Inner>,
}

impl CacheStore {
    /// Opens (creating if necessary) the store at `dir` and scans every
    /// segment file into the immutable snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be created or
    /// listed, or a segment file cannot be read. Corrupt records are *not*
    /// errors; they end the scan of their file and are counted in
    /// [`CacheStore::corrupt_segments`].
    pub fn open(dir: impl AsRef<Path>) -> Result<CacheStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let io = |path: &Path, e: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        };
        fs::create_dir_all(&dir).map_err(|e| io(&dir, e))?;
        let mut segments: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&dir).map_err(|e| io(&dir, e))? {
            let entry = entry.map_err(|e| io(&dir, e))?;
            let path = entry.path();
            if path.extension().is_some_and(|ext| ext == "seg") {
                segments.push(path);
            }
        }
        // Scan in file-name order so the snapshot is a pure function of
        // the directory contents, not of readdir order.
        segments.sort();
        let mut snapshot = HashMap::new();
        let mut corrupt_segments = 0;
        for path in &segments {
            let bytes = fs::read(path).map_err(|e| io(path, e))?;
            if !scan_segment(&bytes, &mut snapshot) {
                corrupt_segments += 1;
            }
        }
        Ok(CacheStore {
            dir,
            snapshot,
            corrupt_segments,
            inner: Mutex::new(Inner::default()),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of entries in the immutable open-time snapshot.
    pub fn snapshot_len(&self) -> usize {
        self.snapshot.len()
    }

    /// Number of entries inserted since the store was opened.
    pub fn added_len(&self) -> usize {
        self.inner.lock().expect("store lock").added.len()
    }

    /// Number of segment files whose scan ended at a corrupt or partial
    /// record (their remaining entries degraded to cold misses).
    pub fn corrupt_segments(&self) -> usize {
        self.corrupt_segments
    }

    /// Whether `key` is in the open-time snapshot. This is the
    /// scheduling-independent membership test used by per-job cache
    /// profiles.
    pub fn contains_snapshot(&self, key: StoreKey) -> bool {
        self.snapshot.contains_key(&key)
    }

    /// Looks up `key`, preferring the lock-free snapshot.
    pub fn get(&self, key: StoreKey) -> Option<(Vec<u8>, HitTier)> {
        if let Some(payload) = self.snapshot.get(&key) {
            return Some((payload.clone(), HitTier::Snapshot));
        }
        let inner = self.inner.lock().expect("store lock");
        inner
            .added
            .get(&key)
            .map(|payload| (payload.clone(), HitTier::Added))
    }

    /// Inserts `payload` under `key` and appends it to this store's
    /// segment file. A key already present (either tier) is left untouched
    /// — entries are content-addressed, so equal keys mean equal payloads.
    /// Oversized payloads are silently not persisted.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the segment file cannot be created
    /// or appended to. Callers for whom the cache is best-effort may ignore
    /// the error; the in-memory side map is updated regardless, so a store
    /// on a read-only directory still deduplicates within the process.
    pub fn put(&self, key: StoreKey, payload: &[u8]) -> Result<(), StoreError> {
        if payload.len() > MAX_PAYLOAD || self.snapshot.contains_key(&key) {
            return Ok(());
        }
        let mut inner = self.inner.lock().expect("store lock");
        if inner.added.contains_key(&key) {
            return Ok(());
        }
        inner.added.insert(key, payload.to_vec());
        let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
        record.push(key.ns);
        record.extend_from_slice(&key.lo.to_le_bytes());
        record.extend_from_slice(&key.hi.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&record_checksum(key, payload).to_le_bytes());
        record.extend_from_slice(payload);
        let writer = match inner.writer.as_mut() {
            Some(writer) => writer,
            None => {
                let writer = self.create_segment()?;
                inner.writer.insert(writer)
            }
        };
        // One write per record keeps a concurrently scanning reader's
        // exposure to a partial tail record, which its checksum rejects.
        writer
            .file
            .write_all(&record)
            .and_then(|()| writer.file.flush())
            .map_err(|e| StoreError::Io {
                path: writer.path.clone(),
                message: e.to_string(),
            })
    }

    /// Creates this store's private segment file under a name unique
    /// across processes (pid) and across stores within a process
    /// (sequence counter), so append-only writers never share a file.
    fn create_segment(&self) -> Result<Writer, StoreError> {
        let pid = std::process::id();
        loop {
            let seq = SEGMENT_SEQ.fetch_add(1, Ordering::Relaxed);
            let path = self.dir.join(format!("{pid:08x}-{seq:04x}.seg"));
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    file.write_all(&MAGIC)
                        .and_then(|()| file.flush())
                        .map_err(|e| StoreError::Io {
                            path: path.clone(),
                            message: e.to_string(),
                        })?;
                    return Ok(Writer { path, file });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => {
                    return Err(StoreError::Io {
                        path,
                        message: e.to_string(),
                    })
                }
            }
        }
    }
}

/// Scans one segment file's bytes into `snapshot`. Returns `false` when
/// the scan stopped early at a corrupt or partial record.
fn scan_segment(bytes: &[u8], snapshot: &mut HashMap<StoreKey, Vec<u8>>) -> bool {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return false;
    }
    let mut pos = MAGIC.len();
    while pos < bytes.len() {
        if bytes.len() - pos < RECORD_HEADER {
            return false;
        }
        let ns = bytes[pos];
        let lo = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().expect("8 bytes"));
        let hi = u64::from_le_bytes(bytes[pos + 9..pos + 17].try_into().expect("8 bytes"));
        let len =
            u32::from_le_bytes(bytes[pos + 17..pos + 21].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_le_bytes(bytes[pos + 21..pos + 29].try_into().expect("8 bytes"));
        pos += RECORD_HEADER;
        if len > MAX_PAYLOAD || bytes.len() - pos < len {
            return false;
        }
        let key = StoreKey::new(ns, lo, hi);
        let payload = &bytes[pos..pos + len];
        if record_checksum(key, payload) != checksum {
            return false;
        }
        snapshot.entry(key).or_insert_with(|| payload.to_vec());
        pos += len;
    }
    true
}

/// FNV-1a over the namespace, key and payload bytes; covering the key
/// means a bit flip in the *key* is caught too, not just in the payload.
fn record_checksum(key: StoreKey, payload: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&[key.ns]);
    eat(&key.lo.to_le_bytes());
    eat(&key.hi.to_le_bytes());
    eat(payload);
    h
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

/// Builds a little-endian payload byte-by-byte. The workspace's vendored
/// `serde` is a no-op stand-in, so payload encoders are hand-rolled on this
/// (mirroring the discipline of the campaign crate's `jsonl`/`json`
/// modules); floats are stored via [`f64::to_bits`], so decoded values are
/// bit-exact and warm runs stay byte-identical to cold ones.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads a payload written by [`ByteWriter`]. Every accessor returns
/// `None` past the end of the buffer (or on a malformed value), so decoders
/// written as `?`-chains degrade corrupt payloads to cold misses instead of
/// panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` stored as a `u64`; `None` when it does not fit.
    pub fn take_usize(&mut self) -> Option<usize> {
        usize::try_from(self.take_u64()?).ok()
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Option<f64> {
        self.take_u64().map(f64::from_bits)
    }

    /// Reads a `bool`; `None` for any byte other than 0 or 1.
    pub fn take_bool(&mut self) -> Option<bool> {
        match self.take_u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Whether the whole buffer was consumed; decoders check this last so
    /// trailing garbage is rejected.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "contango-store-{tag}-{}-{}",
            std::process::id(),
            SEGMENT_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn entries_survive_a_reopen_as_snapshot() {
        let dir = temp_dir("reopen");
        let key = StoreKey::new(NS_STAGE, 7, 9);
        {
            let store = CacheStore::open(&dir).expect("open");
            assert_eq!(store.snapshot_len(), 0);
            store.put(key, b"payload").expect("put");
            // Same-process lookups see the entry in the added tier.
            assert_eq!(store.get(key), Some((b"payload".to_vec(), HitTier::Added)));
            assert!(!store.contains_snapshot(key));
        }
        let store = CacheStore::open(&dir).expect("reopen");
        assert_eq!(store.snapshot_len(), 1);
        assert!(store.contains_snapshot(key));
        assert_eq!(
            store.get(key),
            Some((b"payload".to_vec(), HitTier::Snapshot))
        );
        assert_eq!(store.corrupt_segments(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_puts_write_once() {
        let dir = temp_dir("dedup");
        {
            let store = CacheStore::open(&dir).expect("open");
            let key = StoreKey::new(NS_SOLVE, 1, 2);
            for _ in 0..5 {
                store.put(key, b"abc").expect("put");
            }
            assert_eq!(store.added_len(), 1);
        }
        let store = CacheStore::open(&dir).expect("reopen");
        assert_eq!(store.snapshot_len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_degrades_to_missing_entries() {
        let dir = temp_dir("trunc");
        {
            let store = CacheStore::open(&dir).expect("open");
            store.put(StoreKey::new(1, 1, 1), b"first").expect("put");
            store.put(StoreKey::new(1, 2, 2), b"second").expect("put");
        }
        // Chop bytes off the single segment file's tail: the first record
        // must survive, the second must vanish, and nothing may panic.
        let seg = fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .expect("segment");
        let bytes = fs::read(&seg).expect("read");
        fs::write(&seg, &bytes[..bytes.len() - 3]).expect("truncate");
        let store = CacheStore::open(&dir).expect("reopen");
        assert!(store.contains_snapshot(StoreKey::new(1, 1, 1)));
        assert!(!store.contains_snapshot(StoreKey::new(1, 2, 2)));
        assert_eq!(store.corrupt_segments(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_are_rejected_by_the_checksum() {
        let dir = temp_dir("flip");
        {
            let store = CacheStore::open(&dir).expect("open");
            store.put(StoreKey::new(2, 3, 4), b"payload!").expect("put");
        }
        let seg = fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .expect("segment");
        let mut bytes = fs::read(&seg).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&seg, &bytes).expect("rewrite");
        let store = CacheStore::open(&dir).expect("reopen");
        assert_eq!(store.snapshot_len(), 0);
        assert_eq!(store.corrupt_segments(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_writer_and_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_usize(42);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_bool(false);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8(), Some(7));
        assert_eq!(r.take_u32(), Some(0xdead_beef));
        assert_eq!(r.take_u64(), Some(u64::MAX - 1));
        assert_eq!(r.take_usize(), Some(42));
        assert_eq!(r.take_f64(), Some(-0.125));
        assert_eq!(r.take_bool(), Some(true));
        assert_eq!(r.take_bool(), Some(false));
        assert!(r.is_done());
        assert_eq!(r.take_u8(), None);
    }

    #[test]
    fn counters_absorb_and_count_lookups() {
        let mut a = CacheCounters {
            mem_hits: 1,
            disk_hits: 2,
            misses: 3,
            evictions: 4,
        };
        a.absorb(CacheCounters {
            mem_hits: 10,
            disk_hits: 20,
            misses: 30,
            evictions: 40,
        });
        assert_eq!(a.mem_hits, 11);
        assert_eq!(a.disk_hits, 22);
        assert_eq!(a.misses, 33);
        assert_eq!(a.evictions, 44);
        assert_eq!(a.lookups(), 66);
    }
}
