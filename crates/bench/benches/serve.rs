//! Load test for the `contango serve` daemon.
//!
//! Two phases besides the criterion group:
//!
//! * **Identity.** Responses from pools of 1, 2 and 8 workers are asserted
//!   bit-identical to each other and to an offline [`Campaign`] run of the
//!   same manifest — the serving layer may never change results.
//! * **Load.** A fleet of client threads hammers one daemon with ≥ 1000
//!   requests over concurrent connections, retrying typed `overloaded`
//!   refusals. Every request is accounted for (accepted + rejected ==
//!   sent; the daemon's own counters must agree), and per-request latency
//!   percentiles plus throughput go to `BENCH_6.json` at the repository
//!   root.
//!
//! Set `CONTANGO_BENCH_QUICK=1` for a fast CI-smoke run (same request
//! floor, fewer criterion samples).

use contango_campaign::output::suite_output;
use contango_campaign::{
    Client, Manifest, ReportKind, Response, ServeConfig, ServeSummary, Server, TableFormat,
};
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

/// The manifest each load-test request carries: one tiny TI instance,
/// construction only, so a request is dominated by protocol + scheduling
/// cost rather than synthesis (the point is to stress the daemon).
const LOAD_MANIFEST: &str = "\
instance ti:6
profile fast
model elmore
stages INITIAL
";

/// The identity-phase manifest: two instances and a stage ablation, the
/// same shape the integration tests pin down.
const IDENTITY_MANIFEST: &str = "\
instance ti:6
instance ti:9:7
profile fast
model elmore
skip BWSN
";

/// The load test must complete at least this many requests (the PR's
/// acceptance floor).
const REQUEST_FLOOR: usize = 1000;

/// Concurrent client connections during the load phase.
const CLIENTS: usize = 16;

fn quick_mode() -> bool {
    std::env::var("CONTANGO_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn spawn_server(
    workers: usize,
    queue_capacity: usize,
) -> (
    SocketAddr,
    thread::JoinHandle<std::io::Result<ServeSummary>>,
) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity,
        allow_file_instances: false,
        cache_dir: None,
    })
    .expect("bind serve port");
    let addr = server.local_addr();
    (addr, thread::spawn(move || server.run()))
}

/// Runs one manifest against a fresh daemon and returns the rendered
/// output, shutting the daemon down afterwards.
fn served_output(workers: usize, manifest: &str) -> String {
    let (addr, daemon) = spawn_server(workers, 64);
    let mut client = Client::connect(addr).expect("connect");
    let output = match client
        .run_manifest(manifest, ReportKind::Table, TableFormat::Text)
        .expect("run manifest")
    {
        Response::RunOk {
            failed: 0, output, ..
        } => output,
        other => panic!("expected a clean run, got {other:?}"),
    };
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread").expect("clean exit");
    output
}

/// Phase 1: served responses are bit-identical across pool sizes and to
/// the offline campaign run.
fn assert_pool_identity() -> bool {
    let offline = Manifest::parse(IDENTITY_MANIFEST)
        .expect("parse manifest")
        .compile()
        .expect("compile manifest")
        .run();
    let expected = suite_output(&offline, ReportKind::Table, TableFormat::Text);
    for workers in [1_usize, 2, 8] {
        assert_eq!(
            served_output(workers, IDENTITY_MANIFEST),
            expected,
            "pool size {workers} diverged from the offline campaign run"
        );
    }
    true
}

/// One client's share of the load: synchronous request/response over its
/// own connection, retrying typed `overloaded` refusals. Returns
/// (per-request latencies, completed, rejections-retried).
fn client_load(addr: SocketAddr, requests: usize) -> (Vec<Duration>, usize, usize) {
    let mut client = Client::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(requests);
    let mut rejected = 0usize;
    for _ in 0..requests {
        loop {
            let start = Instant::now();
            match client
                .run_manifest(LOAD_MANIFEST, ReportKind::Table, TableFormat::Text)
                .expect("run manifest")
            {
                Response::RunOk { failed: 0, .. } => {
                    latencies.push(start.elapsed());
                    break;
                }
                Response::Error { kind, .. } if kind == "overloaded" => {
                    // Typed backpressure: the job was refused, not lost.
                    rejected += 1;
                    thread::sleep(Duration::from_millis(2));
                }
                other => panic!("unexpected response under load: {other:?}"),
            }
        }
    }
    let completed = latencies.len();
    (latencies, completed, rejected)
}

fn percentile_ms(sorted: &[Duration], pct: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank].as_secs_f64() * 1e3
}

/// Phase 2: the load test proper. Returns the JSON body for BENCH_6.
fn run_load_test(pool_identity: bool) -> String {
    let per_client = REQUEST_FLOOR.div_ceil(CLIENTS);
    let total = per_client * CLIENTS;
    // A deliberately small queue relative to the client count, so
    // backpressure is actually exercised while most requests still land.
    let queue_capacity = 32;
    let (addr, daemon) = spawn_server(0, queue_capacity);
    let workers = contango_core::ParallelConfig::auto().resolved();

    let start = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        handles.push(thread::spawn(move || client_load(addr, per_client)));
    }
    let mut latencies = Vec::with_capacity(total);
    let mut completed = 0usize;
    let mut rejected = 0usize;
    for handle in handles {
        let (lat, done, rej) = handle.join().expect("client thread");
        latencies.extend(lat);
        completed += done;
        rejected += rej;
    }
    let elapsed = start.elapsed();

    let mut shutdown_client = Client::connect(addr).expect("connect for shutdown");
    shutdown_client.shutdown().expect("shutdown");
    let summary = daemon.join().expect("daemon thread").expect("clean exit");

    // Zero dropped-but-unreported jobs: every client request got exactly
    // one response (the synchronous clients prove that by construction),
    // and the daemon's own ledger agrees — everything accepted completed,
    // and nothing beyond the typed rejections went missing.
    assert_eq!(completed, total, "every request must complete");
    assert_eq!(
        summary.accepted, summary.completed,
        "shutdown must drain every accepted job"
    );
    assert_eq!(summary.accepted, total as u64);
    assert_eq!(summary.rejected, rejected as u64);
    assert_eq!(summary.jobs_run, total as u64);

    latencies.sort();
    let p50 = percentile_ms(&latencies, 50.0);
    let p95 = percentile_ms(&latencies, 95.0);
    let p99 = percentile_ms(&latencies, 99.0);
    let throughput = completed as f64 / elapsed.as_secs_f64();

    format!(
        "{{\n  \"requests\": {total},\n  \"clients\": {CLIENTS},\n  \
         \"workers\": {workers},\n  \"queue_capacity\": {queue_capacity},\n  \
         \"completed\": {completed},\n  \"rejected_retried\": {rejected},\n  \
         \"p50_ms\": {p50:.3},\n  \"p95_ms\": {p95:.3},\n  \"p99_ms\": {p99:.3},\n  \
         \"throughput_rps\": {throughput:.1},\n  \"elapsed_s\": {:.3},\n  \
         \"pool_identity\": {pool_identity},\n  \
         \"host_cores\": {cores},\n  \"peak_rss_mb\": {rss}\n}}\n",
        elapsed.as_secs_f64(),
        cores = contango_bench::host_cores(),
        rss = contango_bench::peak_rss_mb_json(),
    )
}

fn bench_serve(c: &mut Criterion) {
    let (addr, daemon) = spawn_server(1, 64);
    let mut client = Client::connect(addr).expect("connect");
    let mut group = c.benchmark_group("serve");
    group.sample_size(if quick_mode() { 3 } else { 10 });
    group.bench_function(BenchmarkId::from_parameter("round_trip/ti6"), |b| {
        b.iter(|| {
            match client
                .run_manifest(LOAD_MANIFEST, ReportKind::Table, TableFormat::Text)
                .expect("run manifest")
            {
                Response::RunOk {
                    failed: 0, output, ..
                } => output.len(),
                other => panic!("unexpected response: {other:?}"),
            }
        })
    });
    group.finish();
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread").expect("clean exit");
}

criterion_group!(benches, bench_serve);

fn main() {
    benches();
    let pool_identity = assert_pool_identity();
    let json = run_load_test(pool_identity);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
    std::fs::write(path, &json).expect("BENCH_6.json is writable");
    println!("BENCH_6.json: {json}");
}
