//! Criterion benchmarks for the delay-evaluation substrate: Elmore,
//! two-pole and transient multi-corner evaluation of a buffered network.

use contango_benchmarks::ti_instance;
use contango_core::buffering::{choose_and_insert_buffers, default_candidates, split_long_edges};
use contango_core::dme::{build_zero_skew_tree, DmeOptions};
use contango_core::lower::to_netlist;
use contango_sim::{DelayModel, Evaluator, Netlist, SourceSpec};
use contango_tech::Technology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn buffered_netlist(sinks: usize) -> (Technology, Netlist) {
    let tech = Technology::ispd09();
    let instance = ti_instance(sinks, 9);
    let mut tree = build_zero_skew_tree(&instance, &tech, DmeOptions::default());
    split_long_edges(&mut tree, 250.0);
    choose_and_insert_buffers(
        &mut tree,
        &tech,
        &default_candidates(&tech, false),
        instance.cap_limit,
        0.1,
        &instance.obstacles,
    )
    .expect("buffering fits");
    let netlist = to_netlist(&tree, &tech, &SourceSpec::ispd09(), 100.0).expect("lowers");
    (tech, netlist)
}

fn bench_models(c: &mut Criterion) {
    let (tech, netlist) = buffered_netlist(200);
    let mut group = c.benchmark_group("evaluation_models");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for model in [
        DelayModel::Elmore,
        DelayModel::TwoPole,
        DelayModel::Transient,
    ] {
        let eval = Evaluator::with_model(tech.clone(), model);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{model:?}")),
            &netlist,
            |b, n| b.iter(|| eval.evaluate(n)),
        );
    }
    group.finish();
}

fn bench_transient_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &sinks in &[100usize, 300] {
        let (tech, netlist) = buffered_netlist(sinks);
        let eval = Evaluator::with_model(tech, DelayModel::Transient);
        group.bench_with_input(BenchmarkId::from_parameter(sinks), &netlist, |b, n| {
            b.iter(|| eval.evaluate(n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models, bench_transient_scaling);
criterion_main!(benches);
