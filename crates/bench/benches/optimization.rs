//! Criterion benchmarks for the SPICE-driven optimization passes and the
//! end-to-end flow on small instances, including the power-reserve and
//! large-inverter ablations called out in DESIGN.md.

use contango_benchmarks::ti_instance;
use contango_core::flow::{ContangoFlow, FlowConfig};
use contango_tech::Technology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_full_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("contango_flow");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &sinks in &[40usize, 80] {
        let instance = ti_instance(sinks, 17);
        let flow = ContangoFlow::new(Technology::ispd09(), FlowConfig::fast());
        group.bench_with_input(BenchmarkId::from_parameter(sinks), &instance, |b, inst| {
            b.iter(|| flow.run(inst).expect("flow runs"))
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let instance = ti_instance(60, 23);
    let mut group = c.benchmark_group("flow_ablations");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let configs = [
        ("small_inverters", FlowConfig::fast()),
        (
            "large_inverters",
            FlowConfig {
                use_large_inverters: true,
                ..FlowConfig::fast()
            },
        ),
        (
            "no_power_reserve",
            FlowConfig {
                power_reserve: 0.0,
                ..FlowConfig::fast()
            },
        ),
        (
            "untuned",
            FlowConfig {
                enable_buffer_sizing: false,
                enable_wiresizing: false,
                enable_wiresnaking: false,
                enable_bottom_level: false,
                ..FlowConfig::fast()
            },
        ),
    ];
    for (label, config) in configs {
        let flow = ContangoFlow::new(Technology::ispd09(), config);
        group.bench_with_input(BenchmarkId::from_parameter(label), &instance, |b, inst| {
            b.iter(|| flow.run(inst).expect("flow runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_flow, bench_ablations);
criterion_main!(benches);
