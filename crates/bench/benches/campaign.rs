//! Criterion benchmarks for the campaign executor: a TI-style scalability
//! suite run serially vs. sharded over 4 workers.
//!
//! Besides the criterion group, the custom `main` writes `BENCH_5.json` at
//! the repository root (job count, serial and 4-worker wall-clock, speedup
//! and parallel efficiency) so the suite-throughput trajectory is recorded
//! run-over-run. The ≥1.5× speedup floor at 4 workers is asserted only
//! when the host actually has ≥4 cores (CI's runners do; a 1-core
//! container cannot demonstrate parallel speedup and would only measure
//! scheduling overhead). Determinism — parallel records bit-identical to
//! serial — is asserted unconditionally.
//!
//! Set `CONTANGO_BENCH_QUICK=1` for a fast CI-smoke run.

use contango_benchmarks::ti_instance;
use contango_campaign::{Campaign, CampaignResult, Job};
use contango_core::flow::FlowConfig;
use contango_tech::Technology;
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Instant;

/// The ≥-floor asserted in CI for the 4-worker suite speedup.
const SPEEDUP_FLOOR: f64 = 1.5;

fn quick_mode() -> bool {
    std::env::var("CONTANGO_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// The benchmark's job matrix: one Contango scalability-configuration run
/// per TI instance size. Sizes are deliberately heterogeneous so the
/// longest-job-first scheduler has real balancing work.
fn suite_jobs(quick: bool) -> Vec<Job> {
    let sizes: &[usize] = if quick {
        &[40, 50, 60, 70, 80, 90, 100, 110]
    } else {
        &[100, 140, 180, 220, 260, 300, 340, 380]
    };
    let tech = Technology::ti45();
    sizes
        .iter()
        .map(|&n| {
            let instance = ti_instance(n, 0xC0FFEE + n as u64);
            Job::contango(&tech, FlowConfig::scalability(), &instance)
        })
        .collect()
}

fn run_suite(jobs: &[Job], threads: usize) -> CampaignResult {
    Campaign::new()
        .threads(threads)
        .extend(jobs.iter().cloned())
        .run()
}

fn bench_campaign(c: &mut Criterion) {
    let jobs = suite_jobs(quick_mode());
    let mut group = c.benchmark_group("campaign");
    group.sample_size(if quick_mode() { 2 } else { 5 });
    group.bench_function(
        BenchmarkId::from_parameter(format!("suite_serial/{}", jobs.len())),
        |b| b.iter(|| run_suite(&jobs, 1)),
    );
    group.bench_function(
        BenchmarkId::from_parameter(format!("suite_threads4/{}", jobs.len())),
        |b| b.iter(|| run_suite(&jobs, 4)),
    );
    group.finish();
}

/// Times `iters` runs of `f` and returns the mean per-iteration seconds.
fn mean_s(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Zeroes wall-clock fields so serial and parallel records compare bitwise.
fn masked(mut result: CampaignResult) -> CampaignResult {
    for record in &mut result.records {
        if let Ok(metrics) = &mut record.outcome {
            metrics.summary.runtime_s = 0.0;
        }
    }
    result.threads = 0;
    result
}

/// Measures the serial-vs-4-worker suite comparison outside criterion and
/// records it in `BENCH_5.json` at the repository root.
fn write_bench5() {
    let quick = quick_mode();
    let jobs = suite_jobs(quick);
    let iters = if quick { 2 } else { 3 };

    // Determinism insurance before timing: the sharded run must reproduce
    // the serial records bit for bit.
    let serial_records = masked(run_suite(&jobs, 1));
    let parallel_records = masked(run_suite(&jobs, 4));
    assert_eq!(
        serial_records, parallel_records,
        "4-worker campaign diverged from the serial reference"
    );
    assert!(
        serial_records.records.iter().all(|r| r.outcome.is_ok()),
        "benchmark suite jobs must all succeed"
    );

    let serial_s = mean_s(iters, || {
        run_suite(&jobs, 1);
    });
    let parallel_s = mean_s(iters, || {
        run_suite(&jobs, 4);
    });
    let speedup = serial_s / parallel_s;
    let efficiency = speedup / 4.0;
    let cores = contango_bench::host_cores();
    // The CI-asserted floor: conservative (the 4-core CI runners measure
    // ~2.5-3.5x on 8 balanced jobs), so tripping it means a real
    // scheduling or session-reuse regression, not timing noise.
    let floor_asserted = contango_bench::assert_scaling_floor(
        "campaign suite at 4 workers",
        cores,
        speedup,
        SPEEDUP_FLOOR,
    );
    let json = format!(
        "{{\n  \"jobs\": {},\n  \"serial_s\": {serial_s:.3},\n  \"threads\": 4,\n  \
         \"parallel_s\": {parallel_s:.3},\n  \"speedup\": {speedup:.2},\n  \
         \"parallel_efficiency\": {efficiency:.2},\n  \"host_cores\": {cores},\n  \
         \"peak_rss_mb\": {rss},\n  \
         \"floor\": {SPEEDUP_FLOOR},\n  \"floor_asserted\": {floor_asserted}\n}}\n",
        jobs.len(),
        rss = contango_bench::peak_rss_mb_json(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_5.json");
    std::fs::write(path, &json).expect("BENCH_5.json is writable");
    println!("BENCH_5.json: {json}");
}

criterion_group!(benches, bench_campaign);

fn main() {
    benches();
    write_bench5();
}
