//! Criterion benchmarks for the supporting substrates added around the core
//! flow: Steiner-tree construction, spatial indexing, reduced-order delay
//! models and Monte-Carlo variation sampling.

use contango_benchmarks::ti_instance;
use contango_core::dme::{build_zero_skew_tree, DmeOptions};
use contango_core::lower::to_netlist;
use contango_geom::{rectilinear_mst, Point, SpatialIndex, SteinerTree};
use contango_sim::variation::{monte_carlo, VariationModel};
use contango_sim::{reduced_order_models, DelayModel, Evaluator, RcTree, SourceSpec};
use contango_tech::Technology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn sink_points(count: usize) -> Vec<Point> {
    ti_instance(count, 11)
        .sinks
        .iter()
        .map(|s| s.location)
        .collect()
}

fn bench_steiner(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_tree");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &count in &[50usize, 200] {
        let points = sink_points(count);
        group.bench_with_input(
            BenchmarkId::new("prim_to_segment", count),
            &points,
            |b, p| {
                b.iter(|| SteinerTree::build(p));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rectilinear_mst", count),
            &points,
            |b, p| {
                b.iter(|| rectilinear_mst(p));
            },
        );
    }
    group.finish();
}

fn bench_spatial_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial_index");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let points = sink_points(2000);
    let index = SpatialIndex::new(&points);
    group.bench_function("nearest_2000", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in points.iter().step_by(40) {
                if index.nearest(*q, None).is_some() {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.finish();
}

fn bench_reduced_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduced_order_model");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &sections in &[100usize, 1000] {
        let mut tree = RcTree::new();
        let mut prev = tree.add_root(5.0);
        for _ in 0..sections {
            prev = tree.add_node(prev, 35.0, 22.0);
        }
        group.bench_with_input(BenchmarkId::from_parameter(sections), &tree, |b, t| {
            b.iter(|| reduced_order_models(t, 61.2));
        });
    }
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo_variation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    let tech = Technology::ispd09();
    let instance = ti_instance(100, 17);
    let tree = build_zero_skew_tree(&instance, &tech, DmeOptions::default());
    let netlist = to_netlist(&tree, &tech, &SourceSpec::ispd09(), 200.0).expect("lowers");
    let evaluator = Evaluator::with_model(tech, DelayModel::TwoPole);
    group.bench_function("16_samples_100_sinks", |b| {
        b.iter(|| {
            monte_carlo(
                &evaluator,
                &netlist,
                &VariationModel::typical_45nm(),
                16,
                20.0,
                7,
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_steiner,
    bench_spatial_index,
    bench_reduced_order,
    bench_monte_carlo
);
criterion_main!(benches);
