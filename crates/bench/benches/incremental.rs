//! Criterion benchmarks for the incremental evaluation engine: repeated
//! evaluation after a single-edge mutation, incremental vs. full
//! re-lowering + re-simulation, at the 80-sink scale the acceptance
//! criterion names.
//!
//! Besides the criterion group, the custom `main` writes `BENCH_2.json` at
//! the repository root (sinks, full-eval µs, incremental-eval µs, speedup)
//! so the performance trajectory of the optimization loop is recorded
//! run-over-run. Set `CONTANGO_BENCH_QUICK=1` for a fast CI-smoke run.

use contango_benchmarks::ti_instance;
use contango_core::buffering::{choose_and_insert_buffers, default_candidates, split_long_edges};
use contango_core::dme::{build_zero_skew_tree, DmeOptions};
use contango_core::lower::{evaluate_incremental, to_netlist};
use contango_core::polarity::correct_polarity;
use contango_core::tree::ClockTree;
use contango_sim::{Evaluator, IncrementalEvaluator, SourceSpec};
use contango_tech::Technology;
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Instant;

const SINKS: usize = 80;
const SEGMENT_UM: f64 = 100.0;

fn quick_mode() -> bool {
    std::env::var("CONTANGO_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Builds the buffered, polarity-corrected 80-sink tree every measurement
/// uses.
fn buffered_tree(sinks: usize) -> (Technology, ClockTree) {
    let tech = Technology::ispd09();
    let instance = ti_instance(sinks, 9);
    let mut tree = build_zero_skew_tree(&instance, &tech, DmeOptions::default());
    split_long_edges(&mut tree, 250.0);
    choose_and_insert_buffers(
        &mut tree,
        &tech,
        &default_candidates(&tech, false),
        instance.cap_limit,
        0.1,
        &instance.obstacles,
    )
    .expect("buffering fits");
    correct_polarity(&mut tree, tech.composite(tech.small_inverter(), 32));
    (tech, tree)
}

/// Mutates a single sink edge so every evaluation sees genuinely new
/// content (monotonically growing snaking never revisits a cached
/// signature, which keeps the benchmark honest about re-lowering and
/// re-solving the dirty cone).
fn mutate_one_edge(tree: &mut ClockTree) {
    let target = tree.sink_node(0);
    tree.node_mut(target).wire.extra_length += 0.01;
}

fn bench_incremental(c: &mut Criterion) {
    let (tech, tree) = buffered_tree(SINKS);
    let source = SourceSpec::ispd09();
    let mut group = c.benchmark_group("incremental");
    group.sample_size(if quick_mode() { 3 } else { 10 });

    // What every optimization round cost before the incremental engine:
    // re-lower the whole tree, re-simulate every stage at both corners.
    {
        let evaluator = Evaluator::new(tech.clone());
        let mut t = tree.clone();
        group.bench_function(
            BenchmarkId::from_parameter(format!("full_eval/{SINKS}")),
            |b| {
                b.iter(|| {
                    mutate_one_edge(&mut t);
                    let netlist = to_netlist(&t, &tech, &source, SEGMENT_UM).expect("lowers");
                    evaluator.evaluate(&netlist)
                })
            },
        );
    }

    // The incremental path: only the mutated stage is re-lowered and only
    // its downstream cone is re-solved.
    {
        let evaluator = IncrementalEvaluator::new(tech.clone());
        let mut t = tree.clone();
        let _ = evaluate_incremental(&t, &tech, &source, SEGMENT_UM, &evaluator);
        group.bench_function(
            BenchmarkId::from_parameter(format!("incremental_eval/{SINKS}")),
            |b| {
                b.iter(|| {
                    mutate_one_edge(&mut t);
                    evaluate_incremental(&t, &tech, &source, SEGMENT_UM, &evaluator)
                })
            },
        );
    }

    group.finish();
}

/// Times `iters` runs of `f` and returns the mean per-iteration time in µs.
fn mean_us(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Measures the full-vs-incremental single-edge-mutation comparison outside
/// criterion and records it in `BENCH_2.json` at the repository root.
fn write_bench2() {
    let (tech, tree) = buffered_tree(SINKS);
    let source = SourceSpec::ispd09();
    let (full_iters, inc_iters) = if quick_mode() { (3, 30) } else { (10, 100) };

    let full_eval = Evaluator::new(tech.clone());
    let mut full_tree = tree.clone();
    let full_us = mean_us(full_iters, || {
        mutate_one_edge(&mut full_tree);
        let netlist = to_netlist(&full_tree, &tech, &source, SEGMENT_UM).expect("lowers");
        full_eval.evaluate(&netlist);
    });

    let inc_eval = IncrementalEvaluator::new(tech.clone());
    let mut inc_tree = tree.clone();
    let _ = evaluate_incremental(&inc_tree, &tech, &source, SEGMENT_UM, &inc_eval);
    let inc_us = mean_us(inc_iters, || {
        mutate_one_edge(&mut inc_tree);
        evaluate_incremental(&inc_tree, &tech, &source, SEGMENT_UM, &inc_eval);
    });

    // Insurance that the two timed paths still agree on the final tree.
    let full =
        full_eval.evaluate(&to_netlist(&inc_tree, &tech, &source, SEGMENT_UM).expect("lowers"));
    let fast = evaluate_incremental(&inc_tree, &tech, &source, SEGMENT_UM, &inc_eval);
    assert!(
        (full.skew() - fast.skew()).abs() <= 1e-9 && (full.clr() - fast.clr()).abs() <= 1e-9,
        "incremental and full evaluation diverged in the benchmark"
    );

    let speedup = full_us / inc_us;
    // The acceptance floor for the incremental engine; timing noise has two
    // orders of magnitude of margin, so tripping this means a real
    // regression, and CI fails on it.
    assert!(
        speedup >= 5.0,
        "incremental evaluation speedup regressed below the 5x floor: {speedup:.2}"
    );
    let cores = contango_bench::host_cores();
    let rss = contango_bench::peak_rss_mb_json();
    let json = format!(
        "{{\n  \"sinks\": {SINKS},\n  \"full_eval_us\": {full_us:.1},\n  \
         \"incremental_eval_us\": {inc_us:.1},\n  \"speedup\": {speedup:.2},\n  \
         \"host_cores\": {cores},\n  \"peak_rss_mb\": {rss}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_2.json");
    std::fs::write(path, &json).expect("BENCH_2.json is writable");
    println!("BENCH_2.json: {json}");
}

criterion_group!(benches, bench_incremental);

fn main() {
    benches();
    write_bench2();
}
