//! Multi-process benchmark for the distributed campaign runner.
//!
//! The bench binary is its own worker: re-invoked with `--dist-worker`
//! (pipe transport) or `--dist-worker-tcp ADDR` (TCP transport), it runs
//! the worker loop instead of the benchmark, so every measured pool is
//! made of real operating-system processes.
//!
//! Three phases besides the criterion group:
//!
//! * **Identity.** Aggregates from pools of 2 and 4 pipe workers are
//!   asserted byte-identical to the serial in-process run.
//! * **Speedup.** Wall-clock of the serial run versus those pools goes to
//!   `BENCH_8.json` at the repository root.
//! * **Failure recovery.** A TCP pool of three workers, one rigged to
//!   crash after its first job, must still reproduce the serial bytes —
//!   zero lost jobs — and its wall-clock and requeue ledger are recorded.
//!
//! Set `CONTANGO_BENCH_QUICK=1` for a fast CI-smoke run.

use contango_campaign::dist::{self, DistConfig, DistSummary};
use contango_campaign::worker::{run_worker, ChaosConfig, WorkerConfig, WorkerConnection};
use contango_campaign::Manifest;
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

/// Four TI-style instances crossed with one baseline: eight jobs, large
/// enough that per-job compute dominates process-spawn overhead and a pool
/// can actually show speedup.
const MANIFEST: &str = "\
instance ti:512
instance ti:768
instance ti:1024
instance ti:1536
profile fast
model elmore
skip BWSN
baselines dme-no-tuning
threads 1
";

/// The CI-smoke variant: same shape, tiny instances.
const QUICK_MANIFEST: &str = "\
instance ti:6
instance ti:9:7
instance ti:12:3
instance ti:16:5
profile fast
model elmore
skip BWSN
baselines dme-no-tuning
threads 1
";

fn quick_mode() -> bool {
    std::env::var("CONTANGO_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn parsed_manifest() -> Manifest {
    let text = if quick_mode() {
        QUICK_MANIFEST
    } else {
        MANIFEST
    };
    Manifest::parse(text).expect("parse manifest")
}

/// The chaos spec passed through to re-invoked worker processes.
fn worker_chaos() -> ChaosConfig {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--dist-chaos" {
            let spec = args.next().expect("--dist-chaos needs a spec");
            return ChaosConfig::parse(&spec).expect("valid chaos spec");
        }
    }
    ChaosConfig::default()
}

fn worker_config() -> WorkerConfig {
    WorkerConfig {
        slots: 1,
        name: format!("bench-{}", std::process::id()),
        chaos: worker_chaos(),
        ..WorkerConfig::default()
    }
}

/// Pipe-transport worker half: stdin/stdout are the frame channel.
fn run_pipe_worker() {
    let connection = WorkerConnection::with_closer(std::io::stdin(), std::io::stdout(), || {
        std::process::exit(0)
    });
    let _ = run_worker(connection, &worker_config());
}

/// TCP-transport worker half: connects (with retry, the coordinator may
/// still be binding) and runs the worker loop.
fn run_tcp_worker(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(stream) => break stream,
            Err(e) if Instant::now() >= deadline => panic!("connect {addr}: {e}"),
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    };
    let connection = WorkerConnection::tcp(stream).expect("clone tcp stream");
    let _ = run_worker(connection, &worker_config());
}

/// Picks a free TCP port by binding port 0 and releasing it.
fn free_addr() -> String {
    let probe = TcpListener::bind("127.0.0.1:0").expect("probe port");
    let addr = probe.local_addr().expect("probe addr");
    drop(probe);
    addr.to_string()
}

fn own_exe() -> String {
    std::env::current_exe()
        .expect("own path")
        .to_string_lossy()
        .into_owned()
}

/// Runs the manifest across `workers` spawned pipe-worker processes.
fn run_with_pipes(workers: usize) -> (String, DistSummary, Duration) {
    let config = DistConfig {
        workers,
        spawn_command: Some(vec![own_exe(), "--dist-worker".to_string()]),
        ..DistConfig::default()
    };
    let manifest = parsed_manifest();
    let start = Instant::now();
    let (result, summary) =
        dist::run_manifest(&manifest, &config, |_| {}).expect("distributed run");
    (result.to_jsonl(), summary, start.elapsed())
}

fn spawn_tcp_worker(addr: &str, chaos: Option<&str>) -> Child {
    let mut command = Command::new(own_exe());
    command
        .args(["--dist-worker-tcp", addr])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(spec) = chaos {
        command.args(["--dist-chaos", spec]);
    }
    command.spawn().expect("spawn tcp worker")
}

/// Runs the manifest against a TCP pool with per-worker chaos specs.
fn run_with_tcp(chaos: &[Option<&str>]) -> (String, DistSummary, Duration) {
    let addr = free_addr();
    let config = DistConfig {
        listen: Some(addr.clone()),
        ..DistConfig::default()
    };
    let manifest = parsed_manifest();
    let start = Instant::now();
    let mut workers: Vec<Child> = chaos
        .iter()
        .map(|spec| spawn_tcp_worker(&addr, *spec))
        .collect();
    let (result, summary) =
        dist::run_manifest(&manifest, &config, |_| {}).expect("distributed run");
    let elapsed = start.elapsed();
    for worker in &mut workers {
        let _ = worker.wait();
    }
    (result.to_jsonl(), summary, elapsed)
}

/// Identity + speedup + failure-recovery phases. Returns the BENCH_8 body.
fn run_dist_report() -> String {
    let manifest = parsed_manifest();
    let start = Instant::now();
    let serial = manifest.compile().expect("compile manifest").run();
    let serial_elapsed = start.elapsed();
    let expected = serial.to_jsonl();
    let jobs = serial.records.len();

    let mut pool_lines = String::new();
    let mut pipes_4_s = f64::NAN;
    for workers in [2_usize, 4] {
        let (jsonl, summary, elapsed) = run_with_pipes(workers);
        assert_eq!(
            jsonl, expected,
            "pipe pool of {workers} diverged from the serial run"
        );
        assert_eq!(summary.workers_lost, 0);
        if workers == 4 {
            pipes_4_s = elapsed.as_secs_f64();
        }
        pool_lines.push_str(&format!(
            "  \"pipes_{workers}_workers_s\": {:.3},\n",
            elapsed.as_secs_f64()
        ));
    }
    // Worker processes amortize their spawn cost over the job matrix, so
    // the same conservative floor as the in-process campaign applies —
    // gated on the host actually having the cores.
    let cores = contango_bench::host_cores();
    let speedup = serial_elapsed.as_secs_f64() / pipes_4_s;
    let floor_asserted = contango_bench::assert_scaling_floor(
        "distributed pipe pool at 4 workers",
        cores,
        speedup,
        1.5,
    );

    // Two rigged workers: one crashes right after reporting its first job
    // (the crash may land after the run completes, which is fine), one
    // tears its connection down with an undelivered assignment in flight —
    // the latter guarantees an observed death and a requeue.
    let (jsonl, summary, chaos_elapsed) =
        run_with_tcp(&[Some("kill:1"), Some("drop:0"), None, None]);
    assert_eq!(jsonl, expected, "crash recovery changed the bytes");
    assert!(
        summary.workers_lost >= 1,
        "the rigged worker was never declared dead"
    );
    assert!(
        summary.requeues >= 1,
        "the dropped assignment was never requeued"
    );

    format!(
        "{{\n  \"jobs\": {jobs},\n  \"serial_s\": {:.3},\n{pool_lines}  \
         \"speedup_4_workers\": {speedup:.2},\n  \"floor_asserted\": {floor_asserted},\n  \
         \"failure_pool\": 4,\n  \"failure_lost_workers\": {},\n  \
         \"failure_requeues\": {},\n  \"failure_recovery_s\": {:.3},\n  \
         \"failure_lost_jobs\": 0,\n  \"bit_identical\": true,\n  \
         \"host_cores\": {cores},\n  \"peak_rss_mb\": {rss}\n}}\n",
        serial_elapsed.as_secs_f64(),
        summary.workers_lost,
        summary.requeues,
        chaos_elapsed.as_secs_f64(),
        rss = contango_bench::peak_rss_mb_json(),
    )
}

fn bench_dist(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist");
    group.sample_size(if quick_mode() { 2 } else { 10 });
    group.bench_function(BenchmarkId::from_parameter("serial/8jobs"), |b| {
        b.iter(|| {
            parsed_manifest()
                .compile()
                .expect("compile manifest")
                .run()
                .records
                .len()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("pipes_2/8jobs"), |b| {
        b.iter(|| run_with_pipes(2).0.len())
    });
    group.finish();
}

criterion_group!(benches, bench_dist);

fn main() {
    // Worker re-invocations take priority over everything criterion does
    // with the argument list.
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--dist-worker") {
        run_pipe_worker();
        return;
    }
    if let Some(at) = args.iter().position(|a| a == "--dist-worker-tcp") {
        run_tcp_worker(
            args.get(at + 1)
                .expect("--dist-worker-tcp needs an address"),
        );
        return;
    }
    benches();
    let json = run_dist_report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json");
    std::fs::write(path, &json).expect("BENCH_8.json is writable");
    println!("BENCH_8.json: {json}");
}
