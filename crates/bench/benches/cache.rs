//! Criterion benchmarks for the persistent cache store: the ISPD'09-style
//! suite run cold (empty store, every result computed and persisted) vs.
//! warm (every stage, transition-solve and construction result served from
//! disk).
//!
//! Besides the criterion group, the custom `main` writes `BENCH_7.json` at
//! the repository root (job count, cold and warm wall-clock, speedup, warm
//! disk-hit rate) so the cache-effectiveness trajectory is recorded
//! run-over-run. Determinism — cold, warm and cache-less aggregate reports
//! bit-identical — is asserted before any timing. The in-bench speedup
//! floor is conservative (the CI cache-smoke job asserts the full 3x on
//! the CLI path); tripping it means cache lookups stopped being hits, not
//! timing noise.
//!
//! Set `CONTANGO_BENCH_QUICK=1` for a fast CI-smoke run.

use contango_benchmarks::{ispd09_suite, make_instance};
use contango_campaign::output::suite_output;
use contango_campaign::{Campaign, CampaignResult, Job, ReportKind, TableFormat};
use contango_core::flow::FlowConfig;
use contango_sim::CacheStore;
use contango_tech::Technology;
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The ≥-floor asserted for the warm-over-cold suite speedup.
const SPEEDUP_FLOOR: f64 = 1.5;

fn quick_mode() -> bool {
    std::env::var("CONTANGO_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// A fresh scratch store directory (cold timings need a new one per run).
fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("contango-bench-cache-{}-{seq}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The ISPD'09-style suite under the fast profile; quick mode trims the
/// instances so a CI smoke run stays in seconds.
fn suite_jobs(quick: bool) -> Vec<Job> {
    let tech = Technology::ispd09();
    ispd09_suite()
        .iter()
        .map(|spec| {
            let mut spec = spec.clone();
            if quick {
                spec.sinks = spec.sinks.min(24);
                spec.obstacles = spec.obstacles.min(4);
            }
            Job::contango(&tech, FlowConfig::fast(), &make_instance(&spec))
        })
        .collect()
}

fn run_suite(jobs: &[Job], store: Option<Arc<CacheStore>>) -> CampaignResult {
    let mut campaign = Campaign::new().threads(2).extend(jobs.iter().cloned());
    if let Some(store) = store {
        campaign = campaign.with_cache(store);
    }
    campaign.run()
}

fn open_store(dir: &PathBuf) -> Arc<CacheStore> {
    Arc::new(CacheStore::open(dir).expect("open bench store"))
}

fn bench_cache(c: &mut Criterion) {
    let jobs = suite_jobs(quick_mode());
    let warm_dir = scratch_dir();
    run_suite(&jobs, Some(open_store(&warm_dir)));
    let mut group = c.benchmark_group("cache");
    group.sample_size(2);
    group.bench_function(
        BenchmarkId::from_parameter(format!("suite_cold/{}", jobs.len())),
        |b| {
            b.iter(|| {
                let dir = scratch_dir();
                let result = run_suite(&jobs, Some(open_store(&dir)));
                std::fs::remove_dir_all(&dir).ok();
                result
            })
        },
    );
    group.bench_function(
        BenchmarkId::from_parameter(format!("suite_warm/{}", jobs.len())),
        |b| b.iter(|| run_suite(&jobs, Some(open_store(&warm_dir)))),
    );
    group.finish();
    std::fs::remove_dir_all(&warm_dir).ok();
}

fn table(result: &CampaignResult) -> String {
    suite_output(result, ReportKind::Table, TableFormat::Text)
}

/// Measures the cold-vs-warm suite comparison outside criterion and
/// records it in `BENCH_7.json` at the repository root.
fn write_bench7() {
    let quick = quick_mode();
    let jobs = suite_jobs(quick);
    let iters = if quick { 1 } else { 2 };

    // Determinism insurance before timing: the cache may only change how
    // fast the aggregate report is produced, never a byte of it.
    let reference = table(&run_suite(&jobs, None));
    let cold_dir = scratch_dir();
    let cold = run_suite(&jobs, Some(open_store(&cold_dir)));
    assert_eq!(
        table(&cold),
        reference,
        "cold store-backed suite diverged from the cache-less reference"
    );
    let warm = run_suite(&jobs, Some(open_store(&cold_dir)));
    assert_eq!(
        table(&warm),
        reference,
        "warm suite diverged from the cache-less reference"
    );
    assert!(
        warm.records.iter().all(|r| r.outcome.is_ok()),
        "benchmark suite jobs must all succeed"
    );
    let (disk_hits, lookups) = warm
        .records
        .iter()
        .filter_map(|r| r.cache.as_ref())
        .fold((0_u64, 0_u64), |(h, l), c| {
            (h + c.disk_hits, l + c.lookups())
        });
    assert!(disk_hits > 0, "a warm store must serve disk hits");
    let hit_rate = disk_hits as f64 / lookups as f64;
    std::fs::remove_dir_all(&cold_dir).ok();

    let mut cold_total = 0.0;
    for _ in 0..iters {
        let dir = scratch_dir();
        let start = Instant::now();
        run_suite(&jobs, Some(open_store(&dir)));
        cold_total += start.elapsed().as_secs_f64();
        // Keep the last cold directory as the warm store.
        std::fs::remove_dir_all(warm_dir_path()).ok();
        std::fs::rename(&dir, warm_dir_path()).expect("stash warm store");
    }
    let cold_s = cold_total / iters as f64;
    let warm_store = open_store(&warm_dir_path());
    let start = Instant::now();
    for _ in 0..iters {
        run_suite(&jobs, Some(Arc::clone(&warm_store)));
    }
    let warm_s = start.elapsed().as_secs_f64() / iters as f64;
    std::fs::remove_dir_all(warm_dir_path()).ok();

    let speedup = cold_s / warm_s;
    assert!(
        speedup >= SPEEDUP_FLOOR,
        "warm suite speedup regressed below the {SPEEDUP_FLOOR}x floor: \
         {speedup:.2} (cold {cold_s:.3}s, warm {warm_s:.3}s)"
    );
    let json = format!(
        "{{\n  \"jobs\": {},\n  \"cold_s\": {cold_s:.3},\n  \"warm_s\": {warm_s:.3},\n  \
         \"speedup\": {speedup:.2},\n  \"warm_disk_hit_rate\": {hit_rate:.3},\n  \
         \"floor\": {SPEEDUP_FLOOR},\n  \
         \"host_cores\": {cores},\n  \"peak_rss_mb\": {rss}\n}}\n",
        jobs.len(),
        cores = contango_bench::host_cores(),
        rss = contango_bench::peak_rss_mb_json(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    std::fs::write(path, &json).expect("BENCH_7.json is writable");
    println!("BENCH_7.json: {json}");
}

/// The stable path where `write_bench7` stashes its warm store between the
/// cold and warm timing phases.
fn warm_dir_path() -> PathBuf {
    std::env::temp_dir().join(format!("contango-bench-cache-warm-{}", std::process::id()))
}

criterion_group!(benches, bench_cache);

fn main() {
    benches();
    write_bench7();
}
