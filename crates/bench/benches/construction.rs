//! Criterion benchmarks for the construction algorithms: DME/ZST building,
//! edge splitting and buffer insertion as a function of sink count.

use contango_benchmarks::ti_instance;
use contango_core::buffering::{default_candidates, insert_buffers_by_cap, split_long_edges};
use contango_core::dme::{build_zero_skew_tree, DmeOptions};
use contango_geom::ObstacleSet;
use contango_tech::Technology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_dme(c: &mut Criterion) {
    let tech = Technology::ispd09();
    let mut group = c.benchmark_group("dme_construction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &sinks in &[100usize, 400] {
        let instance = ti_instance(sinks, 3);
        group.bench_with_input(BenchmarkId::from_parameter(sinks), &instance, |b, inst| {
            b.iter(|| build_zero_skew_tree(inst, &tech, DmeOptions::default()));
        });
    }
    group.finish();
}

fn bench_buffering(c: &mut Criterion) {
    let tech = Technology::ispd09();
    let mut group = c.benchmark_group("buffer_insertion");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &sinks in &[100usize, 400] {
        let instance = ti_instance(sinks, 5);
        let mut tree = build_zero_skew_tree(&instance, &tech, DmeOptions::default());
        split_long_edges(&mut tree, 250.0);
        let composite = default_candidates(&tech, false)[0];
        let max_cap = tech.slew_free_cap(composite.output_res());
        group.bench_with_input(BenchmarkId::from_parameter(sinks), &tree, |b, t| {
            b.iter(|| {
                let mut work = t.clone();
                insert_buffers_by_cap(&mut work, &tech, composite, max_cap, &ObstacleSet::new())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dme, bench_buffering);
criterion_main!(benches);
