//! Criterion benchmarks for the construction engine vs. the pinned
//! pre-engine references: ZST/DME building, greedy-matching topology,
//! composite-buffer insertion and the full INITIAL construction, at the
//! 1k-sink scale the PR-4 acceptance criterion names, plus a scalability
//! sweep of the engine to 10k sinks.
//!
//! Besides the criterion groups, the custom `main` measures the same
//! kernels outside criterion and records them in `BENCH_4.json` at the
//! repository root, asserting regression floors on every engine-vs-
//! reference speedup (CI runs this as part of the bench-smoke job). Set
//! `CONTANGO_BENCH_QUICK=1` for a fast CI-smoke run.
//!
//! The floors are deliberately conservative (see `docs/benchmarking.md`):
//! the engine and the references share the exact merge mathematics, so the
//! serial headroom is bounded by the allocation and traversal overhead the
//! engine removes (~1.5–3× on realistic instances, more on drain-stress
//! layouts); thread fan-out adds more on multi-core hosts but is not
//! asserted, because CI core counts vary.

use contango_benchmarks::ti_instance;
use contango_core::buffering::{choose_and_insert_buffers, default_candidates, split_long_edges};
use contango_core::construct::{
    choose_buffers_with, construct_initial, greedy_matching_with, zero_skew_tree_with,
    ConstructArena, ConstructConfig, ParallelConfig,
};
use contango_core::dme::{build_zero_skew_tree, reference_zero_skew_tree, DmeOptions};
use contango_core::instance::ClockNetInstance;
use contango_core::obstacles::repair_obstacle_violations;
use contango_core::polarity::correct_polarity;
use contango_core::topology::{reference_greedy_matching_tree, TopologyKind};
use contango_core::ClockTree;
use contango_geom::Point;
use contango_tech::Technology;
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Instant;

const SINKS: usize = 1000;

fn quick_mode() -> bool {
    std::env::var("CONTANGO_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Register-bank row layout: drain-stress for the pairing rounds (the
/// pre-engine index re-scans its dead points, the engine does not).
fn row_instance(n: usize) -> ClockNetInstance {
    let mut b = ClockNetInstance::builder("bank-rows")
        .die(0.0, 0.0, 42000.0, 30000.0)
        .source(Point::new(0.0, 15000.0))
        .cap_limit(4.0e8);
    for i in 0..n {
        b = b.sink(
            Point::new(100.0 + 40.0 * i as f64, 15000.0),
            5.0 + (i % 7) as f64,
        );
    }
    b.build().expect("valid row instance")
}

fn construct_config() -> ConstructConfig {
    ConstructConfig {
        topology: TopologyKind::Dme,
        use_large_inverters: false,
        max_edge_len: 250.0,
        power_reserve: 0.1,
        parallel: ParallelConfig::serial(),
    }
}

/// The pre-engine INITIAL construction sequence, step for step.
fn reference_initial(instance: &ClockNetInstance, tech: &Technology) -> ClockTree {
    let mut tree = reference_zero_skew_tree(instance, tech, DmeOptions::default());
    let candidates = default_candidates(tech, false);
    let strongest = candidates
        .iter()
        .map(|c| c.output_res())
        .fold(f64::INFINITY, f64::min);
    repair_obstacle_violations(&mut tree, instance, tech, strongest);
    split_long_edges(&mut tree, 250.0);
    let report = choose_and_insert_buffers(
        &mut tree,
        tech,
        &candidates,
        instance.cap_limit,
        0.1,
        &instance.obstacles,
    )
    .expect("buffering fits");
    correct_polarity(&mut tree, report.composite);
    tree
}

fn bench_construction(c: &mut Criterion) {
    let tech = Technology::ispd09();
    let instance = ti_instance(SINKS, 7);
    let mut arena = ConstructArena::new();
    let config = construct_config();
    let mut group = c.benchmark_group("construction");
    group.sample_size(if quick_mode() { 3 } else { 10 });
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function(
        BenchmarkId::from_parameter(format!("zst_ref/{SINKS}")),
        |b| b.iter(|| reference_zero_skew_tree(&instance, &tech, DmeOptions::default())),
    );
    group.bench_function(
        BenchmarkId::from_parameter(format!("zst_eng/{SINKS}")),
        |b| b.iter(|| zero_skew_tree_with(&instance, &tech, DmeOptions::default(), &mut arena)),
    );
    group.bench_function(
        BenchmarkId::from_parameter(format!("initial_ref/{SINKS}")),
        |b| b.iter(|| reference_initial(&instance, &tech)),
    );
    group.bench_function(
        BenchmarkId::from_parameter(format!("initial_eng/{SINKS}")),
        |b| {
            b.iter(|| construct_initial(&instance, &tech, &config, &mut arena).expect("constructs"))
        },
    );
    group.finish();
}

fn bench_construction_scale(c: &mut Criterion) {
    let tech = Technology::ispd09();
    let mut arena = ConstructArena::new();
    let config = construct_config();
    let mut group = c.benchmark_group("construction_scale");
    group.sample_size(if quick_mode() { 3 } else { 10 });
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    // The sweep to 10k sinks that the pre-engine path made impractical to
    // iterate on; engine-only, so it stays fast even in quick mode.
    for &sinks in &[1000usize, 4000, 10000] {
        let instance = ti_instance(sinks, 3);
        group.bench_with_input(BenchmarkId::from_parameter(sinks), &instance, |b, inst| {
            b.iter(|| construct_initial(inst, &tech, &config, &mut arena).expect("constructs"));
        });
    }
    group.finish();
}

/// Times `iters` runs of `f` and returns the mean per-iteration time in
/// µs. One untimed warm-up call absorbs cold-cache/page-fault cost so the
/// CI floor assertions do not ride on the first iteration.
fn mean_us(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Measures every engine-vs-reference construction kernel outside
/// criterion, records `BENCH_4.json` at the repository root and asserts
/// the regression floors.
fn write_bench4() {
    let tech = Technology::ispd09();
    let instance = ti_instance(SINKS, 7);
    let drain = row_instance(SINKS);
    let mut arena = ConstructArena::new();
    let config = construct_config();
    let iters = if quick_mode() { 8 } else { 20 };

    // Equivalence insurance: the timed engine paths must reproduce the
    // reference bit for bit, serial and fanned out.
    let reference = reference_initial(&instance, &tech);
    let (engine, _) = construct_initial(&instance, &tech, &config, &mut arena).expect("constructs");
    assert_eq!(reference, engine, "engine INITIAL diverged from reference");
    let parallel_config = ConstructConfig {
        parallel: ParallelConfig::with_threads(4),
        ..config
    };
    let (engine4, _) =
        construct_initial(&instance, &tech, &parallel_config, &mut arena).expect("constructs");
    assert_eq!(engine, engine4, "threads=4 INITIAL diverged from serial");

    let zst_ref = mean_us(iters, || {
        std::hint::black_box(reference_zero_skew_tree(
            &instance,
            &tech,
            DmeOptions::default(),
        ));
    });
    let zst_eng = mean_us(iters, || {
        std::hint::black_box(zero_skew_tree_with(
            &instance,
            &tech,
            DmeOptions::default(),
            &mut arena,
        ));
    });
    let greedy_ref = mean_us(iters, || {
        std::hint::black_box(reference_greedy_matching_tree(&instance));
    });
    let greedy_eng = mean_us(iters, || {
        std::hint::black_box(greedy_matching_with(&instance, &mut arena));
    });
    let drain_ref = mean_us(iters.min(8), || {
        std::hint::black_box(reference_greedy_matching_tree(&drain));
    });
    let drain_eng = mean_us(iters.min(8), || {
        std::hint::black_box(greedy_matching_with(&drain, &mut arena));
    });

    let candidates = default_candidates(&tech, false);
    let mut split = reference_zero_skew_tree(&instance, &tech, DmeOptions::default());
    split_long_edges(&mut split, 250.0);
    let mut buf_ref_tree = split.clone();
    let buf_ref = mean_us(iters, || {
        let r = choose_and_insert_buffers(
            &mut buf_ref_tree,
            &tech,
            &candidates,
            instance.cap_limit,
            0.1,
            &instance.obstacles,
        )
        .expect("fits");
        std::hint::black_box(r);
    });
    let mut buf_eng_tree = split.clone();
    let buf_eng = mean_us(iters, || {
        let r = choose_buffers_with(
            &mut buf_eng_tree,
            &tech,
            &candidates,
            instance.cap_limit,
            0.1,
            &instance.obstacles,
            ParallelConfig::serial(),
            &mut arena,
        )
        .expect("fits");
        std::hint::black_box(r);
    });
    assert_eq!(buf_ref_tree, buf_eng_tree, "buffer planning diverged");

    let initial_ref = mean_us(iters, || {
        std::hint::black_box(reference_initial(&instance, &tech));
    });
    let initial_eng = mean_us(iters, || {
        std::hint::black_box(
            construct_initial(&instance, &tech, &config, &mut arena).expect("constructs"),
        );
    });
    // Cold-arena cost of the public entry point, for the trajectory record.
    let zst_cold = mean_us(iters, || {
        std::hint::black_box(build_zero_skew_tree(
            &instance,
            &tech,
            DmeOptions::default(),
        ));
    });

    let scale_10k = {
        let big = ti_instance(10_000, 3);
        mean_us(iters.min(5), || {
            std::hint::black_box(
                construct_initial(&big, &tech, &config, &mut arena).expect("constructs"),
            );
        })
    };

    let speedup = |r: f64, e: f64| r / e;
    let floors = [
        ("zst", speedup(zst_ref, zst_eng), 1.15),
        ("greedy", speedup(greedy_ref, greedy_eng), 1.2),
        ("greedy_drain", speedup(drain_ref, drain_eng), 1.5),
        ("buffering", speedup(buf_ref, buf_eng), 1.4),
        ("initial", speedup(initial_ref, initial_eng), 1.25),
    ];
    for (name, ratio, floor) in floors {
        assert!(
            ratio >= floor,
            "construction speedup `{name}` regressed below its {floor}x floor: {ratio:.2}"
        );
    }

    let json = format!(
        "{{\n  \"sinks\": {SINKS},\n  \
         \"zst\": {{ \"reference_us\": {zst_ref:.1}, \"engine_us\": {zst_eng:.1}, \"speedup\": {:.2} }},\n  \
         \"greedy\": {{ \"reference_us\": {greedy_ref:.1}, \"engine_us\": {greedy_eng:.1}, \"speedup\": {:.2} }},\n  \
         \"greedy_drain\": {{ \"reference_us\": {drain_ref:.1}, \"engine_us\": {drain_eng:.1}, \"speedup\": {:.2} }},\n  \
         \"buffering\": {{ \"reference_us\": {buf_ref:.1}, \"engine_us\": {buf_eng:.1}, \"speedup\": {:.2} }},\n  \
         \"initial\": {{ \"reference_us\": {initial_ref:.1}, \"engine_us\": {initial_eng:.1}, \"speedup\": {:.2} }},\n  \
         \"zst_cold_arena_us\": {zst_cold:.1},\n  \
         \"initial_10k_engine_us\": {scale_10k:.1},\n  \
         \"host_cores\": {cores},\n  \"peak_rss_mb\": {rss}\n}}\n",
        speedup(zst_ref, zst_eng),
        speedup(greedy_ref, greedy_eng),
        speedup(drain_ref, drain_eng),
        speedup(buf_ref, buf_eng),
        speedup(initial_ref, initial_eng),
        cores = contango_bench::host_cores(),
        rss = contango_bench::peak_rss_mb_json(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_4.json");
    std::fs::write(path, &json).expect("BENCH_4.json is writable");
    println!("BENCH_4.json: {json}");
}

criterion_group!(benches, bench_construction, bench_construction_scale);

fn main() {
    benches();
    write_bench4();
}
