//! Criterion benchmarks for extreme-scale construction: the hierarchical
//! partitioned engine on 10k–1M-sink stress instances, across a worker
//! ladder.
//!
//! Besides the criterion group, the custom `main` writes `BENCH_10.json`
//! at the repository root: a full threads × size matrix (1/2/4/8 workers
//! × 10k/100k/1M sinks) with per-cell wall-clock, the engine-arena
//! watermark and the process peak RSS, plus the Elmore evaluation time of
//! the largest synthesized tree. Before anything is timed, the
//! partitioned builder is pinned bit-identical to the flat serial engine
//! on every matrix cell. The ≥1.5× speedup floor at 4 workers on the
//! 100k+ rows is asserted only on hosts with ≥4 cores (a 1-core container
//! cannot demonstrate parallel speedup); smaller hosts record the matrix
//! without asserting.
//!
//! Set `CONTANGO_BENCH_QUICK=1` for a fast CI-smoke run (caps the matrix
//! at 40k sinks and skips the 1M row).

use contango_bench::{assert_scaling_floor, host_cores, peak_rss_mb_json};
use contango_benchmarks::{stress_instance, StressLayout};
use contango_core::construct::{
    construct_initial, ConstructArena, ConstructConfig, ParallelConfig,
};
use contango_core::instance::ClockNetInstance;
use contango_core::lower::to_netlist;
use contango_core::topology::TopologyKind;
use contango_core::ClockTree;
use contango_sim::{DelayModel, Evaluator};
use contango_tech::Technology;
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Instant;

const SPEEDUP_FLOOR: f64 = 1.5;
const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];
const STRESS_SEED: u64 = 45;

fn quick_mode() -> bool {
    std::env::var("CONTANGO_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// The matrix's size axis: quick mode stays within the CI smoke budget,
/// full mode runs the 10k/100k/1M ladder the acceptance criterion names.
fn size_ladder(quick: bool) -> &'static [usize] {
    if quick {
        &[10_000, 40_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    }
}

fn config_with_threads(threads: usize) -> ConstructConfig {
    ConstructConfig {
        topology: TopologyKind::Dme,
        use_large_inverters: false,
        max_edge_len: 250.0,
        power_reserve: 0.1,
        parallel: ParallelConfig::with_threads(threads),
    }
}

fn build(
    instance: &ClockNetInstance,
    tech: &Technology,
    threads: usize,
    arena: &mut ConstructArena,
) -> ClockTree {
    construct_initial(instance, tech, &config_with_threads(threads), arena)
        .expect("stress instance constructs")
        .0
}

fn bench_extreme(c: &mut Criterion) {
    let tech = Technology::ispd09();
    let instance = stress_instance(
        if quick_mode() { 10_000 } else { 100_000 },
        STRESS_SEED,
        StressLayout::Clustered,
    );
    let mut arena = ConstructArena::new();
    let mut group = c.benchmark_group("extreme");
    group.sample_size(if quick_mode() { 2 } else { 5 });
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &threads in &[1usize, 4] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("initial_t{threads}/{}", instance.sink_count())),
            |b| b.iter(|| build(&instance, &tech, threads, &mut arena)),
        );
    }
    group.finish();
}

/// Times `iters` runs of `f` and returns the mean per-iteration seconds.
/// One untimed warm-up call absorbs cold-cache/page-fault cost.
fn mean_s(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Measures the threads × size construction matrix outside criterion and
/// records `BENCH_10.json` at the repository root.
fn write_bench10() {
    let quick = quick_mode();
    let tech = Technology::ispd09();
    let cores = host_cores();
    let sizes = size_ladder(quick);

    let mut arena = ConstructArena::new();
    let mut cells = String::new();
    let mut floor_asserted = false;
    let mut largest: Option<(usize, ClockTree)> = None;
    for &sinks in sizes {
        let instance = stress_instance(sinks, STRESS_SEED, StressLayout::Clustered);
        // Identity pin before timing: every partitioned cell must
        // reproduce the flat serial tree bit for bit.
        let reference = build(&instance, &tech, 1, &mut arena);
        let iters = if quick || sinks >= 1_000_000 { 1 } else { 2 };
        let mut serial_s = f64::NAN;
        for &threads in &THREAD_LADDER {
            let tree = build(&instance, &tech, threads, &mut arena);
            assert_eq!(
                tree, reference,
                "partitioned construction at {threads} thread(s) diverged from \
                 the flat engine on {sinks} sinks"
            );
            let cell_s = mean_s(iters, || {
                build(&instance, &tech, threads, &mut arena);
            });
            if threads == 1 {
                serial_s = cell_s;
            }
            if threads == 4 && sinks >= 100_000 {
                floor_asserted |= assert_scaling_floor(
                    &format!("extreme construction at 4 threads on {sinks} sinks"),
                    cores,
                    serial_s / cell_s,
                    SPEEDUP_FLOOR,
                );
            }
            let arena_mb = arena.watermark().total_bytes() as f64 / (1024.0 * 1024.0);
            cells.push_str(&format!(
                "    {{ \"sinks\": {sinks}, \"threads\": {threads}, \
                 \"construct_s\": {cell_s:.3}, \"arena_mb\": {arena_mb:.1}, \
                 \"peak_rss_mb\": {} }},\n",
                peak_rss_mb_json()
            ));
        }
        largest = Some((sinks, reference));
    }
    cells.truncate(cells.len().saturating_sub(2)); // drop trailing ",\n"

    // Elmore evaluation of the largest synthesized tree: the acceptance
    // criterion's "construction + evaluation completes" leg.
    let (eval_sinks, tree) = largest.expect("matrix has at least one row");
    let instance = stress_instance(eval_sinks, STRESS_SEED, StressLayout::Clustered);
    let netlist = to_netlist(&tree, &tech, &instance.source_spec, 150.0).expect("netlist lowers");
    let evaluator = Evaluator::with_model(tech, DelayModel::Elmore);
    let eval_s = mean_s(1, || {
        evaluator.evaluate(&netlist);
    });

    let json = format!(
        "{{\n  \"matrix\": [\n{cells}\n  ],\n  \
         \"eval_sinks\": {eval_sinks},\n  \"elmore_eval_s\": {eval_s:.3},\n  \
         \"floor\": {SPEEDUP_FLOOR},\n  \"floor_asserted\": {floor_asserted},\n  \
         \"host_cores\": {cores},\n  \"peak_rss_mb\": {},\n  \"quick\": {quick}\n}}\n",
        peak_rss_mb_json()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
    std::fs::write(path, &json).expect("BENCH_10.json is writable");
    println!("BENCH_10.json: {json}");
}

criterion_group!(benches, bench_extreme);

fn main() {
    benches();
    write_bench10();
}
