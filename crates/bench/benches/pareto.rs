//! Criterion benchmarks for the variation-aware campaign axes and the
//! Pareto-frontier reduction: a multi-corner Monte-Carlo sweep run
//! through the campaign executor, plus the raw sampler throughput.
//!
//! Besides the criterion group, the custom `main` writes `BENCH_9.json`
//! at the repository root (sweep size, frontier size and dominated count,
//! multi-corner suite wall-clock, Monte-Carlo samples/second) so the
//! variation-campaign trajectory is recorded run-over-run. Determinism —
//! the frontier bytes identical between 1 and 4 executor threads — is
//! asserted before anything is timed.
//!
//! Set `CONTANGO_BENCH_QUICK=1` for a fast CI-smoke run.

use contango_benchmarks::ti_instance;
use contango_campaign::{
    sweep_jobs, Campaign, CampaignResult, CornerKind, Frontier, Job, SweepAxes, VariationSpec,
};
use contango_core::flow::{ContangoFlow, FlowConfig};
use contango_core::lower::to_netlist;
use contango_sim::{monte_carlo_samples, DelayModel, Evaluator, VariationModel};
use contango_tech::Technology;
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::var("CONTANGO_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// The benchmark's job matrix: two TI instances fanned out over the
/// default sweep grid, every variant evaluated at all four corners with a
/// seeded Monte-Carlo block — the full variation-aware campaign shape.
fn sweep_suite(quick: bool) -> Vec<Job> {
    let sizes: &[usize] = if quick { &[12, 16] } else { &[40, 60] };
    let samples = if quick { 2 } else { 8 };
    let tech = Technology::ispd09();
    let mut jobs = Vec::new();
    for &n in sizes {
        let instance = ti_instance(n, 0xC0FFEE + n as u64);
        let base = Job::contango(&tech, FlowConfig::fast(), &instance)
            .with_corners(CornerKind::all().to_vec())
            .with_variation(Some(VariationSpec {
                model: VariationModel::typical_45nm(),
                samples,
                seed: 0xC0FFEE,
            }));
        jobs.extend(sweep_jobs(
            &base,
            &SweepAxes {
                cap_scales: vec![1.0, 0.85],
                skip_sets: vec![Vec::new(), vec!["BWSN".to_string()]],
                large_inverters: vec![false],
            },
        ));
    }
    jobs
}

fn run_suite(jobs: &[Job], threads: usize) -> CampaignResult {
    Campaign::new()
        .threads(threads)
        .extend(jobs.iter().cloned())
        .run()
}

fn bench_pareto(c: &mut Criterion) {
    let quick = quick_mode();
    let jobs = sweep_suite(quick);
    let result = run_suite(&jobs, 4);
    let mut group = c.benchmark_group("pareto");
    group.sample_size(if quick { 2 } else { 5 });
    group.bench_function(
        BenchmarkId::from_parameter(format!("multi_corner_sweep/{}", jobs.len())),
        |b| b.iter(|| run_suite(&jobs, 4)),
    );
    group.bench_function(
        BenchmarkId::from_parameter(format!("frontier_reduce/{}", result.records.len())),
        |b| b.iter(|| Frontier::of_result(&result)),
    );
    group.finish();
}

/// Times `iters` runs of `f` and returns the mean per-iteration seconds.
fn mean_s(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Measures the multi-corner sweep and the raw sampler throughput outside
/// criterion and records them in `BENCH_9.json` at the repository root.
fn write_bench9() {
    let quick = quick_mode();
    let jobs = sweep_suite(quick);
    let iters = if quick { 1 } else { 3 };

    // Determinism insurance before timing: the frontier bytes must be
    // identical between serial and sharded execution of the same sweep.
    let serial = run_suite(&jobs, 1);
    let sharded = run_suite(&jobs, 4);
    assert!(
        serial.records.iter().all(|r| r.outcome.is_ok()),
        "benchmark sweep jobs must all succeed"
    );
    let frontier = Frontier::of_result(&serial);
    assert_eq!(
        Frontier::of_result(&sharded).to_jsonl(),
        frontier.to_jsonl(),
        "sharded sweep frontier diverged from the serial reference"
    );
    assert!(
        !frontier.points.is_empty(),
        "the sweep must land points on the frontier"
    );

    let sweep_s = mean_s(iters, || {
        run_suite(&jobs, 4);
    });

    // Raw sampler throughput: Monte-Carlo samples of one synthesized
    // netlist per second, measured on the Elmore evaluator.
    let tech = Technology::ispd09();
    let instance = ti_instance(if quick { 16 } else { 60 }, 0xC0FFEE);
    let flow_result = ContangoFlow::new(tech.clone(), FlowConfig::fast())
        .run(&instance)
        .expect("flow runs");
    let netlist =
        to_netlist(&flow_result.tree, &tech, &instance.source_spec, 150.0).expect("netlist lowers");
    let evaluator = Evaluator::with_model(tech, DelayModel::Elmore);
    let model = VariationModel::typical_45nm();
    let mc_samples = if quick { 32 } else { 256 };
    let mc_s = mean_s(iters, || {
        monte_carlo_samples(&evaluator, &netlist, &model, mc_samples, 0xC0FFEE);
    });
    let samples_per_s = mc_samples as f64 / mc_s;

    let json = format!(
        "{{\n  \"jobs\": {},\n  \"corners\": 4,\n  \"mc_samples_per_job\": {},\n  \
         \"frontier_size\": {},\n  \"dominated\": {},\n  \"sweep_s\": {sweep_s:.3},\n  \
         \"mc_samples_per_s\": {samples_per_s:.0},\n  \"quick\": {quick},\n  \
         \"host_cores\": {cores},\n  \"peak_rss_mb\": {rss}\n}}\n",
        jobs.len(),
        if quick { 2 } else { 8 },
        frontier.points.len(),
        frontier.dominated,
        cores = contango_bench::host_cores(),
        rss = contango_bench::peak_rss_mb_json(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    std::fs::write(path, &json).expect("BENCH_9.json is writable");
    println!("BENCH_9.json: {json}");
}

criterion_group!(benches, bench_pareto);

fn main() {
    benches();
    write_bench9();
}
