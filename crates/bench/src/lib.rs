//! Shared helpers for the table/figure reproduction binaries and the
//! Criterion micro-benchmarks.
//!
//! Every table and figure of the paper's evaluation section has a dedicated
//! binary in `src/bin/` (see `DESIGN.md` for the experiment index). The
//! binaries print the same rows the paper reports. Because the full-size
//! ISPD'09-style instances take minutes under the transient evaluator, the
//! binaries honour two environment variables:
//!
//! * `CONTANGO_MAX_SINKS` — truncate every benchmark to at most this many
//!   sinks (default 32; set to a large value for full-size runs);
//! * `CONTANGO_FULL=1` — shorthand for no truncation.

use contango_benchmarks::{make_instance, BenchmarkSpec};
use contango_core::instance::ClockNetInstance;

/// Reads the sink-count cap from the environment (see crate docs).
pub fn sink_cap() -> usize {
    if std::env::var("CONTANGO_FULL").is_ok_and(|v| v == "1") {
        return usize::MAX;
    }
    std::env::var("CONTANGO_MAX_SINKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Generates the instance for `spec`, truncated to at most `max_sinks`
/// sinks (keeping the die, obstacles and capacitance budget).
pub fn instance_for(spec: &BenchmarkSpec, max_sinks: usize) -> ClockNetInstance {
    let full = make_instance(spec);
    if full.sink_count() <= max_sinks {
        return full;
    }
    let mut builder = ClockNetInstance::builder(&full.name)
        .die(full.die.lo.x, full.die.lo.y, full.die.hi.x, full.die.hi.y)
        .source(full.source)
        .cap_limit(full.cap_limit);
    for s in full.sinks.iter().take(max_sinks) {
        builder = builder.sink(s.location, s.cap);
    }
    for o in full.obstacles.iter() {
        builder = builder.obstacle(o.rect);
    }
    builder.build().expect("truncated instances stay valid")
}

/// Prints a horizontal rule sized for the table binaries.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Resolved core count of the host — the worker-pool width
/// [`contango_core::ParallelConfig::auto`] would pick. Recorded in every
/// `BENCH_N.json` so a measurement can be judged against the machine that
/// produced it.
pub fn host_cores() -> usize {
    contango_core::ParallelConfig::auto().resolved()
}

/// Process-wide peak resident set in MiB (`VmHWM`), when the platform
/// exposes it. Recorded in every `BENCH_N.json`; `None` renders as JSON
/// `null`.
pub fn peak_rss_mb() -> Option<f64> {
    contango_core::mem::peak_rss_bytes().map(|bytes| bytes as f64 / (1024.0 * 1024.0))
}

/// Renders [`peak_rss_mb`] as a JSON scalar (`null` when unavailable).
pub fn peak_rss_mb_json() -> String {
    match peak_rss_mb() {
        Some(mb) => format!("{mb:.1}"),
        None => "null".to_string(),
    }
}

/// The shared speedup-floor gate for the parallel benches: asserts
/// `speedup >= floor` only when the host has at least `need_cores` cores
/// (a 1-core container cannot demonstrate parallel speedup and would only
/// measure scheduling overhead), and returns whether the floor was
/// asserted. `label` names the measurement in the panic/note text.
pub fn assert_scaling_floor(label: &str, cores: usize, speedup: f64, floor: f64) -> bool {
    let need_cores = 4;
    if cores >= need_cores {
        assert!(
            speedup >= floor,
            "{label} speedup regressed below the {floor}x floor: {speedup:.2}"
        );
        true
    } else {
        println!(
            "note: {cores} host core(s) < {need_cores}; recording {label} without \
             asserting the {floor}x floor (measured {speedup:.2}x)"
        );
        false
    }
}
