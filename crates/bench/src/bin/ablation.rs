//! Ablation study of the design choices DESIGN.md calls out:
//!
//! * initial topology (DME vs greedy matching vs H-tree vs fishbone),
//! * buffer sliding/interleaving on vs off,
//! * power reserve γ (0%, 10%, 25%),
//! * delay model driving the optimization loops.
//!
//! Each row reports the final CLR and skew on a truncated ISPD'09-style
//! benchmark so the relative effect of each choice is visible quickly; run
//! with `CONTANGO_FULL=1` for full-size instances.

use contango_bench::{instance_for, rule, sink_cap};
use contango_benchmarks::ispd09_suite;
use contango_core::flow::{ContangoFlow, FlowConfig};
use contango_core::topology::TopologyKind;
use contango_sim::DelayModel;
use contango_tech::Technology;

fn report(label: &str, config: FlowConfig) {
    let tech = Technology::ispd09();
    let spec = &ispd09_suite()[0];
    let instance = instance_for(spec, sink_cap());
    match ContangoFlow::new(tech, config).run(&instance) {
        Ok(result) => println!(
            "{label:<34} {:>10.2} {:>10.3} {:>12.0} {:>8}",
            result.clr(),
            result.skew(),
            result.report.total_cap,
            result.spice_runs
        ),
        Err(e) => println!("{label:<34} failed: {e}"),
    }
}

fn main() {
    println!("Ablation — effect of individual design choices (benchmark: ispd09f11-style)");
    println!(
        "{:<34} {:>10} {:>10} {:>12} {:>8}",
        "configuration", "CLR ps", "Skew ps", "cap fF", "evals"
    );
    rule(80);

    // Initial topology.
    for kind in TopologyKind::all() {
        report(
            &format!("topology = {}", kind.label()),
            FlowConfig {
                topology: kind,
                ..FlowConfig::fast()
            },
        );
    }
    rule(80);

    // Buffer sliding / interleaving.
    report("buffer sliding = on", FlowConfig::fast());
    report(
        "buffer sliding = off",
        FlowConfig {
            enable_buffer_sliding: false,
            ..FlowConfig::fast()
        },
    );
    rule(80);

    // Power reserve γ (Section IV-C keeps 10% of the budget for later steps).
    for reserve in [0.0, 0.10, 0.25] {
        report(
            &format!("power reserve γ = {:.0}%", reserve * 100.0),
            FlowConfig {
                power_reserve: reserve,
                ..FlowConfig::fast()
            },
        );
    }
    rule(80);

    // Delay model driving the optimization loops.
    for model in [
        DelayModel::Elmore,
        DelayModel::TwoPole,
        DelayModel::Transient,
    ] {
        report(
            &format!("delay model = {model:?}"),
            FlowConfig {
                model,
                ..FlowConfig::fast()
            },
        );
    }
    rule(80);
    println!(
        "paper shape: DME topology, 10% reserve and the accurate evaluator give the lowest CLR;"
    );
    println!("sliding mainly helps CLR; Elmore-driven loops leave several ps of skew on the table");
}
