//! Table I — composite inverter analysis for the ISPD'09 library.
//!
//! Reproduces: input capacitance, output capacitance and output resistance
//! of 1× large and 1×/2×/4×/8× small inverters, plus the Pareto flag that
//! justifies Contango's use of 8× small inverters instead of large ones.

use contango_tech::composite::composite_table;
use contango_tech::Technology;

fn main() {
    let tech = Technology::ispd09();
    let table = composite_table(tech.inverters(), 8);
    println!("Table I — inverter analysis for ISPD'09 CNS benchmarks");
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>14}",
        "INVERTER TYPE", "Input Cap fF", "Output Cap fF", "Res. Ohm", "non-dominated"
    );
    contango_bench::rule(68);
    // The paper's rows, in its order.
    let wanted = [
        "1X INV_LARGE",
        "1X INV_SMALL",
        "2X INV_SMALL",
        "4X INV_SMALL",
        "8X INV_SMALL",
    ];
    for label in wanted {
        if let Some(row) = table.iter().find(|r| r.label == label) {
            println!(
                "{:<16} {:>12.1} {:>12.1} {:>10.1} {:>14}",
                row.label, row.input_cap, row.output_cap, row.output_res, row.non_dominated
            );
        }
    }
    println!();
    println!("paper reference (Table I): 1X Large = 35 / 80 / 61.2, 8X Small = 33.6 / 48.8 / 55");
}
