//! Table V — scalability on TI-style benchmarks: CLR, skew, maximum
//! latency, capacitance and evaluator-run counts as the sink count grows.
//!
//! The paper sweeps 200…50 000 sinks; by default this binary runs the
//! smaller prefix so it finishes quickly. Pass sink counts as arguments or
//! set `CONTANGO_FULL=1` for the complete sweep.

use contango_benchmarks::ti_instance;
use contango_core::flow::{ContangoFlow, FlowConfig};
use contango_tech::Technology;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let sizes: Vec<usize> = if !args.is_empty() {
        args
    } else if std::env::var("CONTANGO_FULL").is_ok_and(|v| v == "1") {
        vec![200, 500, 1000, 2000, 5000, 10_000, 20_000, 50_000]
    } else {
        vec![200, 500, 1000]
    };

    println!("Table V — scalability on TI-style benchmarks");
    println!(
        "{:<9} {:>9} {:>9} {:>12} {:>10} {:>8} {:>9}",
        "# sinks", "CLR ps", "Skew ps", "Latency ps", "Cap pF", "runs", "CPU s"
    );
    contango_bench::rule(72);
    for &n in &sizes {
        let instance = ti_instance(n, 0x5EED);
        let flow = ContangoFlow::new(Technology::ti45(), FlowConfig::scalability());
        match flow.run(&instance) {
            Ok(r) => println!(
                "{:<9} {:>9.2} {:>9.3} {:>12.1} {:>10.1} {:>8} {:>9.1}",
                n,
                r.clr(),
                r.skew(),
                r.report.max_latency(),
                r.report.total_cap / 1000.0,
                r.spice_runs,
                r.runtime_s
            ),
            Err(e) => println!("{n}: failed: {e}"),
        }
    }
    println!();
    println!("paper shape: capacitance scales linearly with sinks, skew stays in single-digit ps,");
    println!("CLR grows slowly, and the number of evaluator runs grows very slowly.");
}
