//! Variation robustness study (extension of Sections IV-H/IV-I).
//!
//! The paper motivates buffer sliding, interleaving and sizing by their
//! effect on robustness to variations; CLR captures supply variation only.
//! This binary quantifies full process+voltage variation with the Monte
//! Carlo engine: it synthesizes one benchmark with and without the
//! CLR-oriented stages and reports the skew/CLR distributions of both trees
//! under a 45 nm-class variation model.

use contango_bench::{instance_for, rule, sink_cap};
use contango_benchmarks::ispd09_suite;
use contango_core::flow::{ContangoFlow, FlowConfig};
use contango_core::lower::to_netlist;
use contango_sim::variation::{monte_carlo, VariationModel};
use contango_sim::{DelayModel, Evaluator};
use contango_tech::Technology;

fn main() {
    let tech = Technology::ispd09();
    let spec = &ispd09_suite()[3];
    let instance = instance_for(spec, sink_cap());
    let samples = 64;
    let model = VariationModel::typical_45nm();

    println!("Monte-Carlo variation robustness ({samples} samples, typical 45 nm sigmas)");
    println!(
        "{:<26} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "flow", "skew µ ps", "skew σ ps", "eff. skew ps", "CLR µ ps", "yield"
    );
    rule(86);

    let configs = [
        ("full contango", FlowConfig::fast()),
        (
            "no CLR stages",
            FlowConfig {
                enable_buffer_sizing: false,
                enable_buffer_sliding: false,
                ..FlowConfig::fast()
            },
        ),
    ];
    for (label, config) in configs {
        match ContangoFlow::new(tech.clone(), config).run(&instance) {
            Ok(result) => {
                let netlist = to_netlist(&result.tree, &tech, &instance.source_spec, 150.0)
                    .expect("flow trees lower cleanly");
                let evaluator = Evaluator::with_model(tech.clone(), DelayModel::TwoPole);
                let report = monte_carlo(&evaluator, &netlist, &model, samples, 20.0, 2010);
                println!(
                    "{label:<26} {:>10.3} {:>10.3} {:>12.3} {:>12.2} {:>9.0}%",
                    report.skew.mean,
                    report.skew.std_dev,
                    report.effective_skew(),
                    report.clr.mean,
                    100.0 * report.skew_yield
                );
            }
            Err(e) => println!("{label:<26} failed: {e}"),
        }
    }
    rule(86);
    println!("paper shape: the CLR-oriented stages tighten the latency distribution, so the");
    println!("effective (mean + 3σ) skew and the sub-20 ps yield both improve");
}
