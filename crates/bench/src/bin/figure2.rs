//! Figure 2 — the obstacle-detouring construction: detour a too-capacitive
//! subtree along a composite obstacle's contour, removing the contour
//! segment furthest from the source.

use contango_core::obstacles::contour_detour;
use contango_geom::{CompoundObstacle, Point, Rect};

fn main() {
    // A composite obstacle made of two abutting macros, a source to the
    // lower-left and four pins spread around the blockage — the setting of
    // Figure 2 in the paper.
    let compound = CompoundObstacle::new(vec![
        Rect::new(200.0, 200.0, 500.0, 400.0),
        Rect::new(500.0, 200.0, 650.0, 400.0),
    ]);
    let source = Point::new(0.0, 0.0);
    let pins = [
        Point::new(250.0, 420.0),
        Point::new(480.0, 420.0),
        Point::new(640.0, 420.0),
        Point::new(640.0, 180.0),
    ];

    let detour = contour_detour(&compound, source, &pins);
    println!("Figure 2 — contour detour around a composite obstacle");
    println!("contour corners      : {}", detour.contour.len());
    println!("contour length       : {:.1} um", compound.contour_length());
    println!("detour length        : {:.1} um", detour.length);
    println!("attachment points    : {}", detour.attachments.len());
    println!("removed gap index    : {}", detour.removed_segment);
    println!();
    println!("contour polygon:");
    for p in &detour.contour {
        println!("  {p}");
    }
    println!("attachments (ordered along the contour):");
    for p in &detour.attachments {
        println!("  {p}");
    }

    // Emit a small SVG so the construction can be inspected visually.
    let mut svg = String::from(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"700\" height=\"500\" viewBox=\"0 0 700 500\">\n",
    );
    for r in compound.rects() {
        svg.push_str(&format!(
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"lightgray\" stroke=\"gray\"/>\n",
            r.lo.x,
            500.0 - r.hi.y,
            r.width(),
            r.height()
        ));
    }
    let n = detour.contour.len();
    for i in 0..n {
        let a = detour.contour[i];
        let b = detour.contour[(i + 1) % n];
        svg.push_str(&format!(
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"red\" stroke-dasharray=\"6 4\"/>\n",
            a.x,
            500.0 - a.y,
            b.x,
            500.0 - b.y
        ));
    }
    svg.push_str(&format!(
        "<circle cx=\"{}\" cy=\"{}\" r=\"5\" fill=\"black\"/>\n",
        source.x,
        500.0 - source.y
    ));
    for p in &pins {
        svg.push_str(&format!(
            "<circle cx=\"{}\" cy=\"{}\" r=\"4\" fill=\"none\" stroke=\"blue\"/>\n",
            p.x,
            500.0 - p.y
        ));
    }
    svg.push_str("</svg>\n");
    if std::fs::write("figure2_detour.svg", svg).is_ok() {
        println!("\nwrote figure2_detour.svg");
    }
}
