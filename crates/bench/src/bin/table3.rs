//! Table III — CLR and skew after each Contango optimization stage
//! (INITIAL, TBSZ, TWSZ, TWSN, BWSN) on the ISPD'09-style benchmarks.

use contango_bench::{instance_for, sink_cap};
use contango_benchmarks::ispd09_suite;
use contango_core::flow::{ContangoFlow, FlowConfig};
use contango_tech::Technology;

fn main() {
    let tech = Technology::ispd09();
    let cap = sink_cap();
    println!("Table III — progress achieved by individual Contango steps");
    println!(
        "{:<14} {:<9} {:>10} {:>10} {:>12} {:>10}",
        "benchmark", "stage", "CLR ps", "Skew ps", "cap fF", "slew OK"
    );
    contango_bench::rule(70);
    for spec in ispd09_suite() {
        let instance = instance_for(&spec, cap);
        let flow = ContangoFlow::new(tech.clone(), FlowConfig::default());
        match flow.run(&instance) {
            Ok(result) => {
                for snap in &result.snapshots {
                    println!(
                        "{:<14} {:<9} {:>10.2} {:>10.3} {:>12.0} {:>10}",
                        instance.name,
                        snap.stage,
                        snap.clr,
                        snap.skew,
                        snap.total_cap,
                        !snap.slew_violation
                    );
                }
            }
            Err(e) => println!("{:<14} failed: {e}", instance.name),
        }
        contango_bench::rule(70);
    }
    println!("paper shape: TWSZ cuts skew by ~4x from INITIAL, TWSN reaches single-digit ps, BWSN trims the rest");
}
