//! Table II — inverted sinks after buffer insertion vs. polarity-correcting
//! inverters added, per ISPD'09-style benchmark.

use contango_bench::{instance_for, sink_cap};
use contango_benchmarks::ispd09_suite;
use contango_core::buffering::{choose_and_insert_buffers, default_candidates, split_long_edges};
use contango_core::dme::{build_zero_skew_tree, DmeOptions};
use contango_core::obstacles::repair_obstacle_violations;
use contango_core::polarity::{correct_polarity, count_inverted_sinks};
use contango_tech::Technology;

fn main() {
    let tech = Technology::ispd09();
    let cap = sink_cap();
    println!("Table II — inverted sinks vs. polarity-correcting inverters");
    println!(
        "{:<14} {:>8} {:>16} {:>16}",
        "benchmark", "sinks", "inverted sinks", "added inverters"
    );
    contango_bench::rule(58);
    for spec in ispd09_suite() {
        let instance = instance_for(&spec, cap);
        let mut tree = build_zero_skew_tree(&instance, &tech, DmeOptions::default());
        repair_obstacle_violations(&mut tree, &instance, &tech, 55.0);
        split_long_edges(&mut tree, 250.0);
        let buffering = choose_and_insert_buffers(
            &mut tree,
            &tech,
            &default_candidates(&tech, false),
            instance.cap_limit,
            0.1,
            &instance.obstacles,
        )
        .expect("buffering fits");
        let inverted_before = count_inverted_sinks(&tree);
        let report = correct_polarity(&mut tree, buffering.composite);
        assert_eq!(report.inverted_sinks, inverted_before);
        assert_eq!(count_inverted_sinks(&tree), 0);
        println!(
            "{:<14} {:>8} {:>16} {:>16}",
            spec.name,
            instance.sink_count(),
            report.inverted_sinks,
            report.added_inverters
        );
    }
    println!();
    println!("paper reference: inverted sinks 46–153, added inverters 2–16 (far fewer than sinks)");
}
