//! Figure 1 — the Contango methodology: stage order and the
//! Improvement- & Violation-Checking (IVC) loop.
//!
//! The figure in the paper is a flow chart; this binary demonstrates it
//! operationally. It runs the flow on one benchmark and prints, for every
//! stage in methodology order, what the stage is responsible for (skew, CLR
//! or both) and how the Clock-Network-Evaluation metrics moved — i.e. the
//! decisions the IVC step would take.

use contango_bench::{instance_for, rule, sink_cap};
use contango_benchmarks::ispd09_suite;
use contango_core::flow::{ContangoFlow, FlowConfig, FlowStage};
use contango_tech::Technology;

fn objective(acronym: &str) -> &'static str {
    match FlowStage::from_acronym(acronym) {
        Some(FlowStage::Initial) => "construction (ZST/DME, obstacles, buffering, polarity)",
        Some(FlowStage::BufferSizing) => "CLR (sliding, interleaving, trunk/branch sizing)",
        Some(FlowStage::WireSizing) => "skew (top-down wiresizing, Algorithm 1)",
        Some(FlowStage::WireSnaking) => "skew (top-down wiresnaking)",
        Some(FlowStage::BottomLevel) => "skew + CLR (bottom-level fine-tuning)",
        None => "custom pass",
    }
}

fn main() {
    let tech = Technology::ispd09();
    let spec = &ispd09_suite()[0];
    let instance = instance_for(spec, sink_cap());
    println!(
        "Figure 1 — Contango methodology on {} ({} sinks)",
        instance.name,
        instance.sink_count()
    );
    println!(
        "{:<10} {:<55} {:>9} {:>9} {:>6}",
        "stage", "objective", "CLR ps", "skew ps", "IVC"
    );
    rule(95);
    match ContangoFlow::new(tech, FlowConfig::default()).run(&instance) {
        Ok(result) => {
            let mut prev: Option<(f64, f64)> = None;
            for snap in &result.snapshots {
                let verdict = match prev {
                    None => "start",
                    Some((clr, skew)) => {
                        if snap.slew_violation {
                            "fail"
                        } else if snap.clr < clr - 1e-9 || snap.skew < skew - 1e-9 {
                            "pass"
                        } else {
                            "next"
                        }
                    }
                };
                println!(
                    "{:<10} {:<55} {:>9.2} {:>9.3} {:>6}",
                    snap.stage,
                    objective(&snap.stage),
                    snap.clr,
                    snap.skew,
                    verdict
                );
                prev = Some((snap.clr, snap.skew));
            }
            rule(95);
            println!(
                "final: CLR {:.2} ps, skew {:.3} ps, {} evaluator runs, {:.1} s",
                result.clr(),
                result.skew(),
                result.spice_runs,
                result.runtime_s
            );
        }
        Err(e) => println!("flow failed: {e}"),
    }
    println!("paper shape: construction and buffer sizing may raise skew; the wire stages then");
    println!("drive it down monotonically, and every stage is gated by an IVC check");
}
