//! Figure 3 — the clock tree produced by Contango on the fnb1-style
//! benchmark, drawn with sinks as crosses, buffers as blue rectangles and
//! wires colored by a red-green slow-down-slack gradient.

use contango_bench::{instance_for, sink_cap};
use contango_benchmarks::ispd09_suite;
use contango_core::flow::{ContangoFlow, FlowConfig};
use contango_core::visualize::tree_to_svg;
use contango_tech::Technology;

fn main() {
    let spec = ispd09_suite()
        .into_iter()
        .find(|s| s.name == "ispd09fnb1")
        .expect("fnb1 is part of the suite");
    let instance = instance_for(&spec, sink_cap());
    println!("Figure 3 — slack-colored clock tree for {}", instance.name);
    let flow = ContangoFlow::new(Technology::ispd09(), FlowConfig::default());
    match flow.run(&instance) {
        Ok(result) => {
            let svg = tree_to_svg(&result.tree, &instance, Some(&result.slacks));
            match std::fs::write("figure3_fnb1.svg", svg) {
                Ok(()) => println!(
                    "wrote figure3_fnb1.svg ({} sinks, {} buffers, skew {:.2} ps, CLR {:.2} ps)",
                    instance.sink_count(),
                    result.tree.buffer_count(),
                    result.skew(),
                    result.clr()
                ),
                Err(e) => println!("could not write SVG: {e}"),
            }
        }
        Err(e) => println!("flow failed: {e}"),
    }
}
