//! Table IV — Contango vs. baseline flows on the ISPD'09-style suite:
//! CLR, capacitance (% of limit) and CPU time, with relative averages.

use contango_baselines::{run_baseline, BaselineKind};
use contango_bench::{instance_for, sink_cap};
use contango_benchmarks::ispd09_suite;
use contango_core::flow::{ContangoFlow, FlowConfig};
use contango_tech::Technology;

fn main() {
    let tech = Technology::ispd09();
    let cap = sink_cap();
    println!("Table IV — results on the ISPD'09-style benchmark suite");
    println!(
        "{:<14} {:<18} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "flow", "CLR ps", "Skew ps", "Cap %", "CPU s"
    );
    contango_bench::rule(78);

    let mut totals: std::collections::BTreeMap<String, (f64, usize)> = Default::default();
    for spec in ispd09_suite() {
        let instance = instance_for(&spec, cap);
        let mut rows: Vec<(String, f64, f64, f64, f64)> = Vec::new();
        match ContangoFlow::new(tech.clone(), FlowConfig::default()).run(&instance) {
            Ok(r) => rows.push((
                "contango".into(),
                r.clr(),
                r.skew(),
                100.0 * r.cap_fraction(&instance),
                r.runtime_s,
            )),
            Err(e) => println!("{:<14} contango failed: {e}", instance.name),
        }
        for kind in BaselineKind::all() {
            match run_baseline(kind, &tech, &instance) {
                Ok(r) => rows.push((
                    kind.label().into(),
                    r.clr(),
                    r.skew(),
                    100.0 * r.cap_fraction(&instance),
                    r.runtime_s,
                )),
                Err(e) => println!("{:<14} {} failed: {e}", instance.name, kind.label()),
            }
        }
        for (flow, clr, skew, capp, cpu) in &rows {
            println!(
                "{:<14} {:<18} {:>10.2} {:>10.3} {:>10.1} {:>10.2}",
                instance.name, flow, clr, skew, capp, cpu
            );
            let entry = totals.entry(flow.clone()).or_insert((0.0, 0));
            entry.0 += clr;
            entry.1 += 1;
        }
        contango_bench::rule(78);
    }

    if let Some((contango_clr, n)) = totals.get("contango").copied() {
        let contango_avg = contango_clr / n.max(1) as f64;
        println!("\nAverage CLR and ratio vs. Contango (paper: 2.15x / 3.99x / 2.35x):");
        for (flow, (sum, count)) in &totals {
            let avg = sum / (*count).max(1) as f64;
            println!(
                "  {:<18} avg CLR {:>8.2} ps   relative {:>5.2}x",
                flow,
                avg,
                avg / contango_avg
            );
        }
    }
}
